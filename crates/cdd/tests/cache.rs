//! Edge cases of the client-side block cache against the full
//! [`cdd::IoSystem`]: zero capacity, single-block capacity, the
//! invalidate-while-a-fill-is-pending race, eviction correctness under a
//! read-only workload, and the remove→re-add retargeting flush. The
//! happy paths and the transparency property live in
//! `raidx-verify::cache_coherence`; these are the corners.

use cdd::cache::CacheSet;
use cdd::{CacheConfig, CddConfig, IoSystem};
use raidx_core::Arch;
use sim_core::Engine;

fn cached_shape(capacity_blocks: usize) -> (Engine, IoSystem) {
    let cfg = CddConfig { cache: Some(CacheConfig { capacity_blocks }), ..CddConfig::default() };
    cdd::testkit::shape_with(4, 1, 8 << 20, Arch::RaidX, cfg)
}

/// Seed `[0, span)` with a per-block tag and return the expected byte of
/// each block.
fn seed_region(sys: &mut IoSystem, span: u64) -> Vec<u8> {
    let bs = sys.block_size() as usize;
    let mut model = Vec::new();
    for lb in 0..span {
        let tag = 0x40 ^ lb as u8;
        sys.write(0, lb, &vec![tag; bs]).expect("seed write");
        model.push(tag);
    }
    model
}

fn assert_block(sys: &mut IoSystem, client: usize, lb: u64, want: u8) {
    let bs = sys.block_size() as usize;
    let (got, _) = sys.read(client, lb, 1).expect("read");
    assert_eq!(got, vec![want; bs], "block {lb} read by client {client}");
}

/// A zero-capacity cache is legal: every lookup misses, every fill is
/// dropped on the floor, and reads stay byte-correct throughout.
#[test]
fn zero_capacity_cache_is_correct_and_never_stores() {
    let (_engine, mut sys) = cached_shape(0);
    assert!(sys.cache_enabled());
    let model = seed_region(&mut sys, 8);
    for pass in 0..2 {
        for (lb, &want) in model.iter().enumerate() {
            let _ = pass;
            assert_block(&mut sys, 1, lb as u64, want);
        }
    }
    let stats = sys.cache_stats().expect("stats");
    assert_eq!(stats.hits, 0, "nothing can ever be cached at capacity 0");
    assert!(stats.misses >= 16);
    assert_eq!(stats.evictions, 0, "nothing stored means nothing evicted");
    assert_eq!(sys.cached_blocks(1), 0);
}

/// A single-block cache caches exactly one block: re-reading it hits,
/// touching any other block evicts it, and every answer stays correct.
#[test]
fn single_block_cache_hits_on_repeats_and_evicts_on_conflict() {
    let (_engine, mut sys) = cached_shape(1);
    let model = seed_region(&mut sys, 2);
    assert_block(&mut sys, 1, 0, model[0]); // miss + fill
    assert_block(&mut sys, 1, 0, model[0]); // hit
    let stats = sys.cache_stats().expect("stats");
    assert_eq!((stats.hits, stats.evictions), (1, 0));
    assert_block(&mut sys, 1, 1, model[1]); // miss: evicts block 0
    assert_block(&mut sys, 1, 0, model[0]); // miss again: 0 was evicted
    let stats = sys.cache_stats().expect("stats");
    assert_eq!(stats.hits, 1, "block 0 must not have survived the conflict");
    assert_eq!(stats.evictions, 2);
    assert_eq!(sys.cached_blocks(1), 1);
}

/// The write-grant invalidation reaches every other client's cache: a
/// cached copy never outlives the write that supersedes it.
#[test]
fn a_write_invalidates_every_other_clients_cached_copy() {
    let (_engine, mut sys) = cached_shape(16);
    let bs = sys.block_size() as usize;
    seed_region(&mut sys, 1);
    assert_block(&mut sys, 1, 0, 0x40); // client 1 caches block 0
    assert_block(&mut sys, 3, 0, 0x40); // client 3 caches it too
    sys.write(2, 0, &vec![0x99; bs]).expect("superseding write");
    let stats = sys.cache_stats().expect("stats");
    assert_eq!(stats.invalidations, 2, "both cached copies must be purged");
    assert_block(&mut sys, 1, 0, 0x99);
    assert_block(&mut sys, 3, 0, 0x99);
}

/// The invalidate-while-a-fill-is-pending race, driven through the
/// two-phase fill API the datapath uses: a fill whose array read started
/// before an overlapping invalidation must abort at commit — the stale
/// bytes never enter the cache, while non-overlapping blocks of the same
/// fill land normally.
#[test]
fn an_invalidation_aborts_the_overlapping_in_flight_fill() {
    const BS: usize = 8;
    let mut set = CacheSet::new(CacheConfig { capacity_blocks: 8 }, 2);
    // Client 0's array read of blocks [0, 2) is in flight...
    let ticket = set.begin_fill();
    // ...when a writer's grant invalidates block 0 (new bytes on disk).
    set.invalidate(0, 1);
    set.commit_fill(0, ticket, 0, &[0x11u8; 2 * BS], BS);
    assert!(set.lookup(0, 0, 1, BS).is_none(), "stale fill of block 0 must abort");
    assert_eq!(set.lookup(0, 1, 1, BS), Some(vec![0x11; BS]), "block 1 was untouched");
    assert_eq!(set.stats().fill_aborts, 1);
    // A whole-cache flush aborts in-flight fills of *any* block.
    let ticket = set.begin_fill();
    set.flush_all();
    set.commit_fill(1, ticket, 4, &[0x22u8; BS], BS);
    assert!(set.lookup(1, 4, 1, BS).is_none(), "fill predating the flush must abort");
    assert_eq!(set.stats().fill_aborts, 2);
}

/// Read-only workload over a region four times the cache: eviction churn
/// on every sweep, capacity never exceeded, every byte still correct.
#[test]
fn eviction_churn_under_a_read_only_workload_stays_correct() {
    const SPAN: u64 = 16;
    const CAPACITY: usize = 4;
    let (_engine, mut sys) = cached_shape(CAPACITY);
    let model = seed_region(&mut sys, SPAN);
    for sweep in 0..3 {
        for lb in 0..SPAN {
            // Vary the order a little so the LRU victim rotates.
            let lb = (lb + sweep) % SPAN;
            assert_block(&mut sys, 1, lb, model[lb as usize]);
            assert!(sys.cached_blocks(1) <= CAPACITY, "capacity must bound the cache");
        }
    }
    let stats = sys.cache_stats().expect("stats");
    assert!(stats.evictions > 0, "a 4-block cache over 16 blocks must churn");
    assert!(stats.hits + stats.misses == 3 * SPAN, "{stats:?}");
}

/// A disk remove→re-add retargets blocks to new homes. Both epoch bumps
/// flush every client's cache (a cached fill predates the new cluster
/// map, `StaleEpoch` semantics), and reads during and after the drain
/// return the retargeted bytes, never the cached pre-migration copies.
#[test]
fn membership_epoch_bumps_flush_the_cache_and_reads_retarget() {
    const SPAN: u64 = 12;
    let (mut engine, mut sys) = cached_shape(32);
    let model = seed_region(&mut sys, SPAN);
    for lb in 0..SPAN {
        assert_block(&mut sys, 1, lb, model[lb as usize]);
    }
    assert_eq!(sys.cached_blocks(1), SPAN as usize);

    // Epoch transitions: register a spare, retire disk 1 onto it.
    sys.add_disk(&mut engine, 0).expect("add spare");
    assert_eq!(sys.cached_blocks(1), 0, "the add's epoch bump must flush");
    sys.remove_disk(0, 1).expect("remove disk 1");
    let stats = sys.cache_stats().expect("stats");
    assert!(stats.flushes >= 2, "both membership transitions flush: {stats:?}");

    // Mid-migration reads refill from the correct (old or new) home.
    for lb in 0..SPAN {
        assert_block(&mut sys, 1, lb, model[lb as usize]);
    }
    let out = sys.rebalance(0, None).expect("drain the migration");
    assert!(out.finished);
    // Post-drain reads see the retargeted placement; cached copies from
    // before the drain are still byte-identical because invalidation
    // tracks logical blocks, not physical homes.
    for lb in 0..SPAN {
        assert_block(&mut sys, 2, lb, model[lb as usize]);
        assert_block(&mut sys, 1, lb, model[lb as usize]);
    }
    sys.scrub().expect("redundancy must hold after the migration");
}
