//! Reconfiguration under load: epoch transitions (disk add / remove /
//! replace) interleaved with foreground reads and writes.
//!
//! The property at stake is the tentpole guarantee of the epoch-versioned
//! cluster map: *any* interleaving of client I/O with an in-flight
//! incremental rebalance returns exactly the bytes the op model predicts,
//! with zero failed operations — placement flips instantly at the
//! transition, the bytes drain later, and reads of still-pending blocks
//! are served from the old home.

use cdd::IoError;
use raidx_core::Arch;
use sim_core::check::{run_cases, Gen};

/// Admission stamps the epoch; a transition between admission and
/// execution fails the write (and a too-old read) with `StaleEpoch`.
#[test]
fn stale_epoch_stamps_are_rejected() {
    let (mut engine, mut sys) = cdd::testkit::shape(4, 1, 8 << 20, Arch::RaidX);
    let bs = sys.block_size() as usize;
    sys.write(0, 0, &vec![7u8; bs]).expect("seed");
    let wadm = sys.admit_write(0, bs).expect("admit write");
    let radm = sys.admit_read(0, 1).expect("admit read");
    assert_eq!(wadm.epoch, 0);
    // Epoch transition: register a spare and retire disk 1 onto it.
    sys.add_disk(&mut engine, 0).expect("add spare");
    sys.remove_disk(0, 1).expect("remove disk 1");
    match sys.write_admitted(0, wadm, &vec![8u8; bs]) {
        Err(IoError::StaleEpoch { seen: 0, current }) => assert!(current > 0),
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // The read stamp is two epochs behind (add + promote): rejected.
    match sys.read_admitted(0, radm) {
        Err(IoError::StaleEpoch { seen: 0, .. }) => {}
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // A read admitted one epoch back is legal while migration drains.
    if sys.migration_pending() > 0 {
        let stale = cdd::Admission { lb0: 0, nblocks: 1, epoch: sys.epoch() - 1 };
        let (got, _) = sys.read_admitted(0, stale).expect("stale-by-one read");
        assert_eq!(got, vec![7u8; bs]);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write {
        pos: u64,
        nblocks: u64,
        tag: u8,
    },
    Read {
        pos: u64,
        nblocks: u64,
    },
    /// Drain a few pending blocks of the in-flight migration.
    Drain {
        steps: usize,
    },
}

fn draw_op(g: &mut Gen) -> Op {
    match g.weighted(&[3, 4, 3]) {
        0 => Op::Write { pos: g.u64_in(0..10_000), nblocks: g.u64_in(1..6), tag: g.u8() },
        1 => Op::Read { pos: g.u64_in(0..10_000), nblocks: g.u64_in(1..6) },
        _ => Op::Drain { steps: g.usize_in(1..7) },
    }
}

/// Satellite property: reads interleaved arbitrarily with an in-flight
/// rebalance agree byte-for-byte with the trivial op model, on both the
/// healthy-removal (copy) and failed-removal (reconstruct) paths.
fn reconfig_agrees_with_model(name: &str, fail_before_remove: bool) {
    run_cases(name, 16, |g| {
        let (mut engine, mut sys) = cdd::testkit::shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let span = 64u64; // working set; small enough to read back whole
        let mut model = vec![0u8; span as usize];

        let write =
            |sys: &mut cdd::IoSystem, model: &mut Vec<u8>, pos: u64, nblocks: u64, tag: u8| {
                let lb0 = pos % (span - nblocks);
                let data: Vec<u8> = (0..nblocks as usize)
                    .flat_map(|i| vec![tag.wrapping_add(i as u8); bs])
                    .collect();
                sys.write(0, lb0, &data).expect("write under reconfiguration");
                for i in 0..nblocks {
                    model[(lb0 + i) as usize] = tag.wrapping_add(i as u8);
                }
            };

        // Seed so the vacated disk actually holds content.
        for lb in 0..span / 2 {
            write(&mut sys, &mut model, lb, 1, (lb % 200) as u8 + 1);
        }
        let _ = sys.flush_images();

        // The transition: retire a mid-roster disk onto a hot-added spare.
        let victim = g.usize_in(1..sys.layout().ndisks());
        if fail_before_remove {
            sys.fail_disk(victim);
        }
        sys.add_disk(&mut engine, 0).expect("add spare");
        sys.remove_disk(0, victim).expect("remove disk");

        for op in g.vec_of(1..30, draw_op) {
            match op {
                Op::Write { pos, nblocks, tag } => write(&mut sys, &mut model, pos, nblocks, tag),
                Op::Read { pos, nblocks } => {
                    let lb0 = pos % (span - nblocks);
                    let (got, _) = sys.read(1, lb0, nblocks).expect("read mid-rebalance");
                    for i in 0..nblocks as usize {
                        let want = model[lb0 as usize + i];
                        assert!(
                            got[i * bs..(i + 1) * bs].iter().all(|&b| b == want),
                            "block {} diverged from the model mid-rebalance",
                            lb0 + i as u64
                        );
                    }
                }
                Op::Drain { steps } => {
                    let out = sys.rebalance(0, Some(steps)).expect("rebalance step");
                    engine.spawn_job("drain", out.plan);
                    engine.run().expect("drain timing");
                }
            }
        }
        // Finish the migration and check the whole working set + scrub.
        let out = sys.rebalance(0, None).expect("final rebalance");
        assert!(out.finished);
        assert_eq!(sys.migration_pending(), 0);
        let (got, _) = sys.read(2, 0, span).expect("post-migration sweep");
        for (lb, &want) in model.iter().enumerate() {
            assert!(
                got[lb * bs..(lb + 1) * bs].iter().all(|&b| b == want),
                "block {lb} diverged from the model after the rebalance drained"
            );
        }
        sys.scrub().expect("redundancy must hold after migration");
    });
}

#[test]
fn reads_during_rebalance_agree_with_model() {
    reconfig_agrees_with_model("reads_during_rebalance_agree_with_model", false);
}

#[test]
fn reads_during_reconstruction_agree_with_model() {
    reconfig_agrees_with_model("reads_during_reconstruction_agree_with_model", true);
}
