//! Partition and failover behaviour of the request paths (moved from
//! `src/datapath.rs` unit tests when the client cache landed there).

use cdd::testkit::{shape, shape_with};
use cdd::{CddConfig, IoError};
use raidx_core::Arch;
use sim_core::SimDuration;

/// Satellite: a partitioned peer must surface a *distinct* error —
/// not a hang, not `DataLoss` — when retries are disabled.
#[test]
fn partition_with_retries_disabled_surfaces_unreachable() {
    let cfg = CddConfig { max_retries: 0, ..CddConfig::default() };
    let (_engine, mut sys) = shape_with(4, 1, 8 << 20, Arch::RaidX, cfg);
    let bs = sys.block_size() as usize;
    let lb = (0..64).find(|&lb| sys.layout().locate_data(lb).disk == 3).expect("lb on disk 3");
    sys.write(0, lb, &vec![9u8; bs]).expect("healthy write");
    sys.partition_node(3);
    match sys.read(0, lb, 1) {
        Err(IoError::Unreachable { node, attempts }) => {
            assert_eq!(node, 3);
            assert_eq!(attempts, 1, "no retries configured, one attempt only");
        }
        other => panic!("expected Unreachable, got {other:?}"),
    }
    match sys.write(0, lb, &vec![8u8; bs]) {
        Err(IoError::Unreachable { node, .. }) => assert_eq!(node, 3),
        other => panic!("expected Unreachable, got {other:?}"),
    }
    // The partitioned node itself still reaches its local disk.
    let (got, _) = sys.read(3, lb, 1).expect("local read survives partition");
    assert_eq!(got, vec![9u8; bs]);
}

/// Satellite: with retries enabled the client fails over to the
/// mirror replica, paying exactly one bounded request timeout —
/// never an unbounded wait.
#[test]
fn partition_failover_is_bounded_by_the_request_timeout() {
    let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
    let bs = sys.block_size() as usize;
    let lb = (0..64).find(|&lb| sys.layout().locate_data(lb).disk == 3).expect("lb on disk 3");
    sys.write(0, lb, &vec![5u8; bs]).expect("healthy write");
    engine.run().expect("drain seed");
    sys.partition_node(3);
    let t0 = engine.now();
    let (got, plan) = sys.read(0, lb, 1).expect("failover read");
    assert_eq!(got, vec![5u8; bs], "replica must serve the bytes");
    assert_eq!(sys.timeouts(), 1);
    assert_eq!(sys.failovers(), 1);
    engine.spawn_job("failover-read", plan);
    engine.run().expect("failover read run");
    let elapsed = engine.now().since(t0);
    let timeout = CddConfig::default().request_timeout;
    assert!(elapsed >= timeout, "failover must pay the timed-out attempt");
    assert!(
        elapsed < SimDuration(timeout.0 * 2),
        "failover took {elapsed:?}, expected within 2x the {timeout:?} timeout"
    );
}

/// A degraded write under a partition parks the unreachable copy and
/// still acknowledges; the parked ledger drives the later resync.
#[test]
fn degraded_write_parks_unreachable_copies() {
    let (_engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
    let bs = sys.block_size() as usize;
    sys.partition_node(2);
    let lb = (0..64)
        .find(|&lb| {
            sys.layout().locate_images(lb).iter().any(|a| a.disk == 2)
                && sys.layout().locate_data(lb).disk != 2
        })
        .expect("lb imaged on disk 2");
    sys.write(0, lb, &vec![0xEE; bs]).expect("degraded write");
    assert!(sys.parked_blocks(2) > 0, "unreachable image must be parked");
    let (got, _) = sys.read(0, lb, 1).expect("read around the partition");
    assert_eq!(got, vec![0xEE; bs]);
}
