//! Tests of the replica read-balancing policies (the paper's announced
//! "I/O load balancing" follow-up, implemented in the CDD client module).

use cdd::{CddConfig, IoSystem, ReadBalance};
use raidx_core::Arch;
use sim_core::Engine;

fn setup(policy: ReadBalance, arch: Arch) -> (Engine, IoSystem) {
    let cfg = CddConfig { read_balance: policy, ..CddConfig::default() };
    let (e, mut s) = cdd::testkit::shape_with(4, 1, 64 << 20, arch, cfg);
    // Seed data across many stripes.
    let bs = s.block_size() as usize;
    let data: Vec<u8> = (0..64 * bs).map(|i| (i % 251) as u8).collect();
    s.write(0, 0, &data).expect("seed write failed");
    (e, s)
}

fn disk_read_bytes(e: &Engine, s: &IoSystem) -> Vec<u64> {
    s.cluster.disks.iter().map(|d| e.resource_stats(d.res).bytes).collect()
}

#[test]
fn primary_only_leaves_mirrors_idle() {
    let (mut e, mut s) = setup(ReadBalance::PrimaryOnly, Arch::Raid10);
    // RAID-10 on 4 disks: primaries are disks 0 and 2, mirrors 1 and 3.
    for burst in 0..4 {
        let (_, p) = s.read(1, burst * 16, 16).unwrap();
        e.spawn_job("r", p);
    }
    e.run().unwrap();
    // The seeding write plans were never spawned, so the disk counters
    // reflect read traffic only.
    let bytes = disk_read_bytes(&e, &s);
    assert!(bytes[0] > 0 && bytes[2] > 0, "primaries unused: {bytes:?}");
    assert_eq!(bytes[1], 0, "mirror 1 served reads: {bytes:?}");
    assert_eq!(bytes[3], 0, "mirror 3 served reads: {bytes:?}");
}

#[test]
fn least_loaded_spreads_over_both_copies() {
    let (mut e, mut s) = setup(ReadBalance::LeastLoaded, Arch::Raid10);
    for burst in 0..8 {
        let (_, p) = s.read(1, (burst % 4) * 16, 16).unwrap();
        e.spawn_job("r", p);
    }
    e.run().unwrap();
    let bytes = disk_read_bytes(&e, &s);
    // Both the primary and the mirror of each pair served read traffic.
    assert!(bytes.iter().all(|&b| b > 0), "a copy sat idle under LeastLoaded: {bytes:?}");
    // And the split is balanced: no copy does more than 65% of its pair.
    for pair in [(0, 1), (2, 3)] {
        let total = bytes[pair.0] + bytes[pair.1];
        assert!(bytes[pair.0] as f64 <= 0.65 * total as f64, "{bytes:?}");
        assert!(bytes[pair.1] as f64 <= 0.65 * total as f64, "{bytes:?}");
    }
}

#[test]
fn balanced_reads_still_return_correct_bytes() {
    for policy in
        [ReadBalance::PrimaryOnly, ReadBalance::LayoutPreference, ReadBalance::LeastLoaded]
    {
        for arch in [Arch::Raid10, Arch::Chained, Arch::RaidX] {
            let (_e, mut s) = setup(policy, arch);
            let bs = s.block_size() as usize;
            let want: Vec<u8> = (0..64 * bs).map(|i| (i % 251) as u8).collect();
            let (got, _) = s.read(2, 0, 64).unwrap();
            assert_eq!(got, want, "{policy:?}/{arch:?} corrupted reads");
        }
    }
}

#[test]
fn least_loaded_respects_failures() {
    let (_e, mut s) = setup(ReadBalance::LeastLoaded, Arch::Chained);
    let dead = s.layout().locate_images(0)[0].disk;
    s.fail_disk(dead);
    // All reads must still succeed and be correct with the mirror gone.
    let bs = s.block_size() as usize;
    let want: Vec<u8> = (0..64 * bs).map(|i| (i % 251) as u8).collect();
    let (got, _) = s.read(1, 0, 64).unwrap();
    assert_eq!(got, want);
}

#[test]
fn least_loaded_counters_alternate_copies() {
    // Direct check of the dispatch decision: repeated identical reads
    // alternate between the two copies as the counters leapfrog.
    let (mut e, mut s) = setup(ReadBalance::LeastLoaded, Arch::Raid10);
    let mut plans = Vec::new();
    for _ in 0..6 {
        let (_, p) = s.read(1, 0, 4).unwrap();
        plans.push(p);
    }
    for p in plans {
        e.spawn_job("r", p);
    }
    e.run().unwrap();
    let bytes = disk_read_bytes(&e, &s);
    // lbs 0..4 span both pairs; repeated reads must alternate copies, so
    // both disks of pair (0,1) serve traffic.
    assert!(bytes[0] > 0 && bytes[1] > 0, "no alternation: {bytes:?}");
}
