//! Degraded-read coverage: drive every [`ReadSource`] variant — Primary,
//! Image, Reconstruct and Lost — through the real read path on both the
//! mirrored layout (RAID-x) and the parity layout (RAID-5), checking that
//! the layer stack (frontend run coalescing -> balancer -> data plane)
//! routes each case correctly and that recovered bytes are exact.

use cdd::{IoError, IoSystem};
use raidx_core::{Arch, ReadSource};
use sim_core::Engine;

fn sys(arch: Arch) -> (Engine, IoSystem) {
    cdd::testkit::shape(4, 1, 4 << 20, arch)
}

fn pattern(nblocks: u64, bs: usize) -> Vec<u8> {
    (0..nblocks as usize * bs).map(|i| ((i * 37 + 11) % 251) as u8).collect()
}

#[test]
fn raidx_covers_primary_image_and_lost() {
    let (_e, mut s) = sys(Arch::RaidX);
    let bs = s.block_size() as usize;
    let data = pattern(8, bs);
    s.write(0, 0, &data).unwrap();
    s.flush_images(); // images durable so Image reads can serve

    // Healthy: every block reads from its primary copy.
    assert!(matches!(s.layout().read_source(0, s.faults()), ReadSource::Primary(_)));
    let (got, _) = s.read(1, 0, 8).unwrap();
    assert_eq!(got, data);

    // Fail block 0's primary disk: the layout must fail over to the image.
    let primary = s.layout().locate_data(0).disk;
    s.fail_disk(primary);
    match s.layout().read_source(0, s.faults()) {
        ReadSource::Image(img) => assert_ne!(img.disk, primary),
        other => panic!("expected Image, got {other:?}"),
    }
    let (got, _) = s.read(1, 0, 8).unwrap();
    assert_eq!(got, data, "degraded RAID-x read returned wrong bytes");

    // Fail the image disk too: both copies gone -> Lost, and the read
    // path surfaces it as DataLoss naming the block.
    let image = s.layout().locate_images(0)[0].disk;
    s.fail_disk(image);
    assert!(matches!(s.layout().read_source(0, s.faults()), ReadSource::Lost));
    match s.read(1, 0, 1) {
        Err(IoError::DataLoss { lb }) => assert_eq!(lb, 0),
        other => panic!("expected DataLoss, got {other:?}"),
    }
}

#[test]
fn raid5_covers_primary_reconstruct_and_lost() {
    let (_e, mut s) = sys(Arch::Raid5);
    let bs = s.block_size() as usize;
    let stripe = s.layout().stripe_width();
    let data = pattern(stripe as u64, bs);
    s.write(0, 0, &data).unwrap();

    assert!(matches!(s.layout().read_source(0, s.faults()), ReadSource::Primary(_)));

    // Fail block 0's data disk: RAID-5 reconstructs from siblings + parity.
    let dead = s.layout().locate_data(0).disk;
    s.fail_disk(dead);
    match s.layout().read_source(0, s.faults()) {
        ReadSource::Reconstruct { siblings, parity } => {
            assert!(!siblings.is_empty());
            assert_ne!(parity.disk, dead);
            for (_, addr) in &siblings {
                assert_ne!(addr.disk, dead, "sibling on the failed disk");
            }
        }
        other => panic!("expected Reconstruct, got {other:?}"),
    }
    let (got, _) = s.read(1, 0, stripe as u64).unwrap();
    assert_eq!(got, data, "parity reconstruction returned wrong bytes");

    // A second failure exceeds RAID-5's tolerance: some stripe member is
    // unrecoverable and the read path reports data loss.
    let second =
        (0..s.cluster.disks.len()).find(|&d| d != dead && !s.faults().contains(d)).unwrap();
    s.fail_disk(second);
    let lost = (0..s.capacity_blocks())
        .find(|&lb| matches!(s.layout().read_source(lb, s.faults()), ReadSource::Lost))
        .expect("double failure should lose some block");
    assert!(matches!(s.read(1, lost, 1), Err(IoError::DataLoss { lb }) if lb == lost));
}

/// The four variants enumerate the complete degraded-read decision tree;
/// sweep every block under a single failure and check nothing falls
/// outside it (and that RAID-x never needs Reconstruct — the paper's
/// point that mirrored recovery is a copy, not a computation).
#[test]
fn single_failure_decision_tree_is_total() {
    for arch in [Arch::RaidX, Arch::Raid5] {
        let (_e, mut s) = sys(arch);
        let bs = s.block_size() as usize;
        let data = pattern(16, bs);
        s.write(0, 0, &data).unwrap();
        s.flush_images();
        s.fail_disk(0);
        for lb in 0..16u64 {
            match s.layout().read_source(lb, s.faults()) {
                ReadSource::Primary(addr) => assert!(!s.faults().contains(addr.disk)),
                ReadSource::Image(addr) => {
                    assert_eq!(arch, Arch::RaidX, "only RAID-x mirrors here");
                    assert!(!s.faults().contains(addr.disk));
                }
                ReadSource::Reconstruct { .. } => {
                    assert_eq!(arch, Arch::Raid5, "only RAID-5 reconstructs");
                }
                ReadSource::Lost => panic!("{arch:?} lost lb {lb} on a single failure"),
            }
        }
        let (got, _) = s.read(1, 0, 16).unwrap();
        assert_eq!(got, data, "{arch:?} degraded sweep returned wrong bytes");
    }
}
