//! Scenario vocabulary for the `raidx-model` protocol checker: scripted
//! client programs ([`ProtoOp`], [`Scenario`]), seeded protocol bugs
//! ([`Defect`]) and the recorded operation history the linearizability
//! checker consumes ([`HistOp`], [`OpRecord`]). The compiled explorable
//! model over this vocabulary lives in [`crate::proto`].

/// One scripted group operation of a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoOp {
    /// Acquire `[start, start+len)`, write `val` to every block, release.
    WriteGroup {
        /// First logical block of the group.
        start: u64,
        /// Blocks in the group.
        len: u64,
        /// Value written to each block.
        val: u64,
    },
    /// Acquire `[start, start+len)`, read every block, release.
    ReadGroup {
        /// First logical block of the group.
        start: u64,
        /// Blocks in the group.
        len: u64,
    },
    /// Lock-free read of every block through the client's local cache:
    /// a hit serves the cached value, a miss reads the store and fills.
    /// Coherence comes from writers' invalidation micro-steps riding
    /// their grant — exactly the [`crate::cache`] protocol.
    CachedReadGroup {
        /// First logical block of the group.
        start: u64,
        /// Blocks in the group.
        len: u64,
    },
    /// An operator's epoch transition over the scenario's migrating block
    /// ([`Scenario::mig`]): bump the epoch under the reserved meta lock
    /// (placement flips, the block becomes pending), then copy the block
    /// to its new home under the block lock, re-validating that it is
    /// still pending — the micro-step shape of [`crate::rebalance`].
    Reconfig,
}

/// A protocol bug planted into the compiled scenario, used by
/// seeded-defect tests to prove the checker catches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defect {
    /// Faithful protocol — exploration must come back clean.
    None,
    /// On conflict, grant anyway (bypasses the overlap check). Caught by
    /// the overlapping-grants state invariant.
    DoubleGrant,
    /// Releases do not wake blocked waiters. Caught as a deadlock (lost
    /// wakeup) on schedules where the waiter blocks before the release.
    SkipWakeup,
    /// The group is released after the first block write; remaining
    /// blocks are written unlocked. Caught by the write-coverage step
    /// assertion, or as a torn read by the linearizability checker.
    EarlyRelease,
    /// Multi-block groups are acquired one block at a time — ascending on
    /// even clients, descending on odd ones — instead of atomically.
    /// Caught as an ABBA deadlock.
    SplitAcquire,
    /// Readers skip the lock protocol entirely. Caught as a
    /// non-linearizable (torn) read by the history checker.
    UnlockedRead,
    /// The epoch transition's migration copy runs unlocked and without
    /// re-validating the pending flag, so it can clobber a new-epoch
    /// write with the stale old-home bytes. Caught as a non-linearizable
    /// (stale) read by the history checker.
    UnsyncedReconfig,
    /// Writers skip the cache invalidation their grant is supposed to
    /// carry (a plain store write instead of the coherent
    /// write-and-purge), so a cached read issued strictly after the
    /// write completes can still return the superseded value. Caught as
    /// a non-linearizable (stale) read by the history checker.
    SkipInvalidate,
}

/// A named multi-client scenario for the model checker.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in pass reports).
    pub name: &'static str,
    /// Size of the shared block store.
    pub blocks: u64,
    /// Per-client operation scripts (client index = thread id).
    pub scripts: Vec<Vec<ProtoOp>>,
    /// The planted bug, if any.
    pub defect: Defect,
    /// Assert at every store write that the writer holds a covering
    /// grant. On for invariant scenarios; off for linearizability
    /// scenarios (there the history checker is the oracle).
    pub assert_coverage: bool,
    /// The logical block an epoch transition migrates, if the scenario
    /// scripts a [`ProtoOp::Reconfig`]. After the bump, this block's
    /// writes land at (and reads of it come from) a shadow new-home cell,
    /// with pending reads served from the old home — the model analogue of
    /// [`crate::placer::Placer`] routing.
    pub mig: Option<u64>,
}

/// Two clients writing the same two-block group — the minimal contended
/// scenario exercising conflict, blocking and wakeup.
pub fn scenario_contended(defect: Defect) -> Scenario {
    Scenario {
        name: "contended-writers",
        blocks: 2,
        scripts: vec![
            vec![ProtoOp::WriteGroup { start: 0, len: 2, val: 10 }],
            vec![ProtoOp::WriteGroup { start: 0, len: 2, val: 20 }],
        ],
        defect,
        assert_coverage: true,
        mig: None,
    }
}

/// A writer and a concurrent reader over the same group — the scenario
/// whose histories the linearizability checker audits for torn reads.
pub fn scenario_reader(defect: Defect) -> Scenario {
    Scenario {
        name: "writer-reader",
        blocks: 2,
        scripts: vec![
            vec![ProtoOp::WriteGroup { start: 0, len: 2, val: 7 }],
            vec![ProtoOp::ReadGroup { start: 0, len: 2 }],
        ],
        defect,
        assert_coverage: false,
        mig: None,
    }
}

/// Three clients with overlapping groups: two writers whose ranges share
/// a block, plus a reader spanning both.
pub fn scenario_three(defect: Defect) -> Scenario {
    Scenario {
        name: "three-clients",
        blocks: 3,
        scripts: vec![
            vec![ProtoOp::WriteGroup { start: 0, len: 2, val: 5 }],
            vec![ProtoOp::WriteGroup { start: 1, len: 2, val: 6 }],
            vec![ProtoOp::ReadGroup { start: 0, len: 2 }],
        ],
        defect,
        assert_coverage: true,
        mig: None,
    }
}

/// An operator's epoch transition racing a writer and a reader of the
/// migrating block — the scenario proving the rebalance copy must
/// re-validate the pending flag under the block lock before overwriting
/// the new home.
pub fn scenario_epoch(defect: Defect) -> Scenario {
    Scenario {
        name: "epoch-migration",
        blocks: 1,
        scripts: vec![
            vec![ProtoOp::Reconfig],
            vec![ProtoOp::WriteGroup { start: 0, len: 1, val: 9 }],
            vec![ProtoOp::ReadGroup { start: 0, len: 1 }],
        ],
        defect,
        assert_coverage: false,
        mig: Some(0),
    }
}

/// A writer racing two caching readers over one block — the scenario
/// proving write-grant invalidation is what keeps client caches
/// coherent. Each reader reads twice so at least one read can land
/// strictly after the write completes: with the faithful protocol that
/// read always sees the new value (the grant invalidated the cached
/// copy); with [`Defect::SkipInvalidate`] it can return the stale cached
/// value, which the linearizability checker rejects.
pub fn scenario_cache(defect: Defect) -> Scenario {
    Scenario {
        name: "cache-coherence",
        blocks: 1,
        scripts: vec![
            vec![
                ProtoOp::CachedReadGroup { start: 0, len: 1 },
                ProtoOp::CachedReadGroup { start: 0, len: 1 },
            ],
            vec![ProtoOp::WriteGroup { start: 0, len: 1, val: 42 }],
            vec![
                ProtoOp::CachedReadGroup { start: 0, len: 1 },
                ProtoOp::CachedReadGroup { start: 0, len: 1 },
            ],
        ],
        defect,
        assert_coverage: true,
        mig: None,
    }
}

/// One entry of the SIOS operation history recorded during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistOp {
    /// A completed group write.
    Write {
        /// First block written.
        start: u64,
        /// Blocks written.
        len: u64,
        /// Value written to each block.
        val: u64,
    },
    /// A completed group read and the values it returned.
    Read {
        /// First block read.
        start: u64,
        /// Value returned per block, in ascending block order.
        vals: Vec<u64>,
    },
}

/// A completed operation with its real-time invocation/response window
/// (global step counters), as consumed by the linearizability checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The client that issued the operation.
    pub client: usize,
    /// Global step count at which the operation started.
    pub inv: u64,
    /// Global step count at which the operation completed.
    pub resp: u64,
    /// What the operation did / returned.
    pub op: HistOp,
}
