//! Deterministic mid-workload fault injection for the CDD data plane.
//!
//! [`FaultInjector`] binds a [`sim_core::FaultPlan`] of [`FaultEvent`]s
//! to a live [`IoSystem`]: timed events fire when the engine's clock is
//! driven past their deadline (via [`sim_core::Engine::run_until`]),
//! point events fire when the workload announces a named trace point
//! ([`FaultInjector::hit_point`]). Because both the schedule and the
//! engine are deterministic, the same seed plus the same plan replays
//! the exact same failure — the property the `fault-sweep` verify pass
//! fingerprints.
//!
//! Events split into *damage* (disk fail, transient offline, NIC
//! partition, node crash, disk slowdown) and *repair* (transient
//! recovery, partition heal, node restart). Repair events carry the
//! node that drives the recovery traffic; their resync/rebuild plans
//! are spawned as detached `"recovery/…"` jobs so foreground latency
//! accounting stays honest while repair I/O competes for the same
//! disks and links.

use sim_core::{Engine, FaultPlan, SimTime};

use crate::error::IoError;
use crate::system::IoSystem;

/// One injectable cluster fault (or its repair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Permanent disk failure: contents lost, rebuild required.
    DiskFail {
        /// Global disk number.
        disk: usize,
    },
    /// Transient disk outage: I/O rejected, contents survive.
    DiskTransient {
        /// Global disk number.
        disk: usize,
    },
    /// Bring a transiently-offline disk back and resync its parked
    /// blocks, driven from `client`.
    DiskRecover {
        /// Global disk number.
        disk: usize,
        /// Node issuing the resync traffic.
        client: usize,
    },
    /// Degrade a disk's service rate by an integer factor ≥ 1 (1
    /// restores full speed). Models a failing-but-alive spindle.
    DiskSlow {
        /// Global disk number.
        disk: usize,
        /// Service-time multiplier.
        factor: u64,
    },
    /// Cut a node's NIC off from the switch; its disks stay healthy but
    /// become unreachable to remote clients.
    NicPartition {
        /// Partitioned node.
        node: usize,
    },
    /// Reconnect a partitioned node and resync, from `client`, every
    /// block parked against its disks during the partition window.
    NicHeal {
        /// Healed node.
        node: usize,
        /// Node issuing the resync traffic.
        client: usize,
    },
    /// Whole-node crash: NIC partition plus every local disk transiently
    /// offline; image-queue entries buffered by the node re-home.
    NodeCrash {
        /// Crashed node.
        node: usize,
    },
    /// Restart a crashed node: reconnect it and recover each of its
    /// transiently-offline disks, driven from `client`.
    NodeRestart {
        /// Restarting node.
        node: usize,
        /// Node issuing the recovery traffic.
        client: usize,
    },
    /// Hot-add a physical disk as a spare (appends a roster epoch; the
    /// disk serves no placement until a later remove promotes it).
    DiskAdd {
        /// Node driving the metadata transition.
        client: usize,
    },
    /// Retire an active disk onto the first registered spare. Placement
    /// flips immediately; the migration is deliberately left in flight so
    /// subsequent workload ops exercise mid-rebalance reads and
    /// stale-epoch admission. The workload (or scenario teardown) drains
    /// it via [`IoSystem::rebalance`].
    DiskRemove {
        /// Global physical disk number (must be Active).
        disk: usize,
        /// Node driving the transition.
        client: usize,
    },
    /// Replace an active disk with a freshly hot-added blank one:
    /// `DiskAdd` + `DiskRemove` as a single event.
    DiskReplace {
        /// Global physical disk number to retire.
        disk: usize,
        /// Node driving the transition.
        client: usize,
    },
}

/// Executes a [`FaultPlan`] of [`FaultEvent`]s against an engine and an
/// I/O system, recording what fired when.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan<FaultEvent>,
    fired: Vec<(SimTime, FaultEvent)>,
}

impl FaultInjector {
    /// Wrap a prepared fault plan.
    pub fn new(plan: FaultPlan<FaultEvent>) -> Self {
        FaultInjector { plan, fired: Vec::new() }
    }

    /// Events applied so far, in firing order with their sim times.
    pub fn fired(&self) -> &[(SimTime, FaultEvent)] {
        &self.fired
    }

    /// Timed events not yet fired.
    pub fn pending(&self) -> usize {
        self.plan.pending()
    }

    /// Earliest unfired timed trigger, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.plan.next_time()
    }

    /// Fire every timed event due at or before the engine's current
    /// clock. Returns how many fired.
    pub fn poll(&mut self, engine: &mut Engine, sys: &mut IoSystem) -> Result<usize, IoError> {
        let due = self.plan.take_due(engine.now());
        let n = due.len();
        for ev in due {
            self.apply(ev, engine, sys)?;
        }
        Ok(n)
    }

    /// Announce a named trace point (e.g. `"op:7"`); fires any fault
    /// scheduled for this occurrence of the point. Returns how many fired.
    pub fn hit_point(
        &mut self,
        name: &str,
        engine: &mut Engine,
        sys: &mut IoSystem,
    ) -> Result<usize, IoError> {
        let due = self.plan.hit_point(name);
        let n = due.len();
        for ev in due {
            self.apply(ev, engine, sys)?;
        }
        Ok(n)
    }

    /// Drive the engine through every remaining *timed* trigger: run the
    /// clock up to each deadline, fire, repeat. Point triggers are not
    /// consumed (only the workload can hit those). The caller finishes
    /// the run with `engine.run()` afterwards.
    pub fn drain_timed(&mut self, engine: &mut Engine, sys: &mut IoSystem) -> Result<(), IoError> {
        while let Some(t) = self.plan.next_time() {
            engine.run_until(t);
            self.poll(engine, sys)?;
        }
        Ok(())
    }

    fn apply(
        &mut self,
        ev: FaultEvent,
        engine: &mut Engine,
        sys: &mut IoSystem,
    ) -> Result<(), IoError> {
        self.fired.push((engine.now(), ev.clone()));
        match ev {
            FaultEvent::DiskFail { disk } => sys.fail_disk(disk),
            FaultEvent::DiskTransient { disk } => sys.fail_disk_transient(disk),
            FaultEvent::DiskRecover { disk, client } => {
                let (plan, _) = sys.recover_disk_transient(client, disk)?;
                engine.spawn_job(format!("recovery/disk{disk}"), plan);
            }
            FaultEvent::DiskSlow { disk, factor } => {
                engine.set_resource_slowdown(sys.cluster.disks[disk].res, factor);
            }
            FaultEvent::NicPartition { node } => sys.partition_node(node),
            FaultEvent::NicHeal { node, client } => {
                sys.heal_node(node);
                // Copies skipped while the node was unreachable are stale;
                // resync every parked disk it hosts (the disks themselves
                // stayed healthy, so resync is legal immediately).
                for disk in 0..sys.cluster.ndisks() {
                    if sys.cluster.node_of_disk(disk) == node
                        && sys.parked_blocks(disk) > 0
                        && !sys.faults().contains(disk)
                        && !sys.offline_disks().contains(disk)
                    {
                        let (plan, _) = sys.resync_parked(client, disk)?;
                        engine.spawn_job(format!("recovery/heal{node}-disk{disk}"), plan);
                    }
                }
            }
            FaultEvent::NodeCrash { node } => sys.crash_node(node),
            FaultEvent::DiskAdd { client } => {
                sys.add_disk(engine, client)?;
            }
            FaultEvent::DiskRemove { disk, client } => {
                sys.remove_disk(client, disk)?;
            }
            FaultEvent::DiskReplace { disk, client } => {
                sys.replace_disk(engine, client, disk)?;
            }
            FaultEvent::NodeRestart { node, client } => {
                sys.heal_node(node);
                for disk in 0..sys.cluster.ndisks() {
                    if sys.cluster.node_of_disk(disk) == node && sys.offline_disks().contains(disk)
                    {
                        let (plan, _) = sys.recover_disk_transient(client, disk)?;
                        engine.spawn_job(format!("recovery/restart{node}-disk{disk}"), plan);
                    }
                }
            }
        }
        Ok(())
    }
}
