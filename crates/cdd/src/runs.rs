//! Coalescing block lists into per-disk sequential runs.
//!
//! The CDD client module merges the physical blocks of one request that
//! land consecutively on one disk into a single disk operation — this is
//! how a full-stripe write becomes `n` streaming writes, and how a RAID-x
//! mirroring group's images become one long sequential write.

use raidx_core::BlockAddr;

/// A maximal sequence of physically consecutive blocks on one disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Disk the run lives on.
    pub disk: usize,
    /// First physical block.
    pub start: u64,
    /// The logical blocks backing each physical block, in physical order.
    pub lbs: Vec<u64>,
}

impl Run {
    /// Number of blocks in the run.
    pub fn len(&self) -> u64 {
        self.lbs.len() as u64
    }

    /// True if the run is empty (never produced by [`merge_runs`]).
    pub fn is_empty(&self) -> bool {
        self.lbs.is_empty()
    }
}

/// Merge `(logical, physical)` pairs into maximal consecutive runs.
///
/// Output runs are sorted by `(disk, start)`; input order is irrelevant.
pub fn merge_runs(items: impl IntoIterator<Item = (u64, BlockAddr)>) -> Vec<Run> {
    let mut v: Vec<(u64, BlockAddr)> = items.into_iter().collect();
    v.sort_unstable_by_key(|&(_, a)| (a.disk, a.block));
    let mut runs: Vec<Run> = Vec::new();
    for (lb, addr) in v {
        match runs.last_mut() {
            Some(r) if r.disk == addr.disk && r.start + r.len() == addr.block => {
                r.lbs.push(lb);
            }
            _ => runs.push(Run { disk: addr.disk, start: addr.block, lbs: vec![lb] }),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(disk: usize, block: u64) -> BlockAddr {
        BlockAddr::new(disk, block)
    }

    #[test]
    fn consecutive_blocks_merge() {
        let runs = merge_runs([(0, a(2, 10)), (1, a(2, 11)), (2, a(2, 12))]);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0], Run { disk: 2, start: 10, lbs: vec![0, 1, 2] });
    }

    #[test]
    fn gaps_split_runs() {
        let runs = merge_runs([(0, a(1, 0)), (1, a(1, 2))]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].start, 0);
        assert_eq!(runs[1].start, 2);
    }

    #[test]
    fn different_disks_never_merge() {
        let runs = merge_runs([(0, a(0, 5)), (1, a(1, 6))]);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn unsorted_input_handled() {
        let runs = merge_runs([(2, a(0, 7)), (0, a(0, 5)), (1, a(0, 6))]);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].lbs, vec![0, 1, 2]);
    }

    #[test]
    fn striped_write_merges_per_disk() {
        // A 2-stripe write over 4 disks: lbs 0..8, disk = lb % 4,
        // block = lb / 4 — each disk gets one 2-block run.
        let items = (0..8u64).map(|lb| (lb, a((lb % 4) as usize, lb / 4)));
        let runs = merge_runs(items);
        assert_eq!(runs.len(), 4);
        for r in &runs {
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn empty_input() {
        assert!(merge_runs(std::iter::empty()).is_empty());
    }
}
