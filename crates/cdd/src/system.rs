//! The cooperative-disk-driver I/O system: a single I/O space over the
//! whole cluster, as an explicit three-layer request pipeline.
//!
//! [`IoSystem`] binds a [`Layout`] (where blocks live), a [`Cluster`]
//! (which resources they cross) and a [`DataPlane`] (the actual bytes),
//! and orchestrates the layers:
//!
//! 1. **Front end / admission** ([`crate::frontend`]) — range and length
//!    validation (shared with the NFS baseline), run coalescing, and
//!    replica selection for reads.
//! 2. **Consistency module** ([`crate::locks`]) — the replicated
//!    lock-group table; a write holds its group for the duration of the
//!    (logically instantaneous) functional update.
//! 3. **Scheme drivers** ([`crate::scheme`]) — one driver per
//!    [`raidx_core::WriteScheme`] executes the admitted write.
//! 4. **Data plane** ([`crate::image_queue`]) — the OSM write-behind
//!    queue buffering deferred mirror images, bounded by
//!    [`CddConfig::max_image_backlog`].
//!
//! Every request is executed **functionally** (bytes move now, so
//! correctness is checkable) and **temporally** (a [`Plan`] is returned
//! for the discrete-event engine, so performance is measurable). Scrub
//! and rebuild live in [`crate::maintenance`].

use cluster::{xor_into, Cluster, ClusterConfig, DataPlane};
use raidx_core::{Arch, FaultSet, Layout, ReadSource};
use sim_core::plan::{par, seq};
use sim_core::{Engine, Plan};

use crate::config::CddConfig;
use crate::frontend::{self, ReadBalancer};
use crate::image_queue::ImageQueue;
use crate::locks::LockGroupTable;
use crate::ops::OpBuilder;
use crate::runs::merge_runs;
use crate::scheme::{self, WriteCtx};

pub use crate::error::IoError;

/// The single I/O space of one architecture over one cluster.
pub struct IoSystem {
    /// Cluster resource handles (public: workloads need node/NIC ids).
    pub cluster: Cluster,
    pub(crate) plane: DataPlane,
    pub(crate) layout: Box<dyn Layout>,
    pub(crate) cfg: CddConfig,
    pub(crate) faults: FaultSet,
    pub(crate) locks: LockGroupTable,
    pub(crate) high_water: u64,
    /// Data-plane write-behind buffer of the OSM image path.
    pub(crate) images: ImageQueue,
    /// Front-end replica selection for reads.
    pub(crate) balancer: ReadBalancer,
    /// Per-op lock-table occupancy samples `(op sequence number, records
    /// held while the op's grant was live)`, recorded only when
    /// [`IoSystem::enable_lock_metrics`] has been called. Op sequence is
    /// the timeline here — grants are scoped to the functional call, so
    /// a sim-time series would read as permanently empty.
    lock_samples: Option<Vec<(u64, usize)>>,
    /// Per-op image-backlog samples `(op sequence number, blocks buffered
    /// after the op)`, recorded alongside the lock samples. The backlog
    /// gauge of the write-behind bound.
    backlog_samples: Option<Vec<(u64, usize)>>,
    /// Monotone operation counter (writes), for the sample series.
    op_seq: u64,
}

impl IoSystem {
    /// Build the cluster in `engine` and assemble the I/O space for `arch`.
    pub fn new(
        engine: &mut Engine,
        cluster_cfg: ClusterConfig,
        arch: Arch,
        cfg: CddConfig,
    ) -> Self {
        let blocks_per_disk = cluster_cfg.blocks_per_disk();
        let layout = raidx_core::layout_for(
            arch,
            cluster_cfg.nodes,
            cluster_cfg.disks_per_node,
            blocks_per_disk,
        );
        let plane = DataPlane::new(
            cluster_cfg.total_disks(),
            cluster_cfg.block_size as usize,
            blocks_per_disk,
        );
        let total_disks = cluster_cfg.total_disks();
        let cluster = Cluster::build(cluster_cfg, engine);
        let balancer = ReadBalancer::new(cfg.read_balance, total_disks);
        IoSystem {
            cluster,
            plane,
            layout,
            cfg,
            faults: FaultSet::none(),
            locks: LockGroupTable::new(),
            high_water: 0,
            images: ImageQueue::new(),
            balancer,
            lock_samples: None,
            backlog_samples: None,
            op_seq: 0,
        }
    }

    /// The layout driving this system.
    pub fn layout(&self) -> &dyn Layout {
        self.layout.as_ref()
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.cluster.cfg.block_size
    }

    /// Client-visible capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.layout.capacity_blocks()
    }

    /// Currently failed disks.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Highest written logical block + 1.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Lock-group grants issued so far.
    pub fn lock_grants(&self) -> u64 {
        self.locks.grants()
    }

    /// Lock-group acquisitions rejected due to an overlapping grant.
    pub fn lock_conflicts(&self) -> u64 {
        self.locks.conflicts()
    }

    /// Lock-group records currently held (diagnostics; normally zero at
    /// rest since grants are scoped to each functional call).
    pub fn locks_held(&self) -> usize {
        self.locks.held().count()
    }

    /// Start recording per-op lock-table occupancy and image-backlog
    /// samples (see [`IoSystem::take_lock_samples`] and
    /// [`IoSystem::take_backlog_samples`]); clears any previous samples.
    pub fn enable_lock_metrics(&mut self) {
        self.lock_samples = Some(Vec::new());
        self.backlog_samples = Some(Vec::new());
    }

    /// Take the recorded `(op sequence, lock records held)` samples,
    /// leaving recording enabled. The `trace_dump` exporter turns these
    /// into the CDD lock-table occupancy series.
    pub fn take_lock_samples(&mut self) -> Vec<(u64, usize)> {
        self.lock_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Take the recorded `(op sequence, buffered image blocks)` samples,
    /// leaving recording enabled. With a backlog bound configured this
    /// series never exceeds the bound.
    pub fn take_backlog_samples(&mut self) -> Vec<(u64, usize)> {
        self.backlog_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Start recording the lock-group grant/release trace (consumed by
    /// the `raidx-verify` lock-order analyzer).
    pub fn enable_lock_trace(&mut self) {
        self.locks.enable_trace();
    }

    /// Take the recorded lock trace, leaving recording enabled.
    pub fn take_lock_trace(&mut self) -> Vec<crate::locks::LockEvent> {
        self.locks.take_trace()
    }

    /// Direct (test) access to the functional plane.
    pub fn plane_mut(&mut self) -> &mut DataPlane {
        &mut self.plane
    }

    pub(crate) fn ops(&self) -> OpBuilder<'_> {
        OpBuilder { cluster: &self.cluster, cfg: &self.cfg }
    }

    /// Record one `(op sequence, records held)` sample if lock metrics
    /// recording is on. Called while the current op's grant is live.
    fn sample_locks(&mut self) {
        let held = self.locks.held().count();
        let seq = self.op_seq;
        self.op_seq += 1;
        if let Some(samples) = self.lock_samples.as_mut() {
            samples.push((seq, held));
        }
    }

    /// Record the post-op image backlog under the same op sequence the
    /// lock sample used.
    fn sample_backlog(&mut self) {
        let pending = self.images.len();
        let seq = self.op_seq.saturating_sub(1);
        if let Some(samples) = self.backlog_samples.as_mut() {
            samples.push((seq, pending));
        }
    }

    /// Write `data` (a whole number of blocks) at logical block `lb0` on
    /// behalf of node `client`. Returns the timing plan; the bytes are
    /// already durable on the functional plane when this returns.
    pub fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        // Front end: admission.
        let bs = self.block_size() as usize;
        let nblocks = frontend::validate_write(bs, self.capacity_blocks(), lb0, data.len())?;

        // Consistency module: atomically acquire the lock group, held for
        // the duration of the (logically instantaneous) functional update.
        let lock = self.locks.acquire(client, lb0, nblocks).map_err(IoError::Lock)?;
        self.sample_locks();
        let result = self.write_locked(client, lb0, nblocks, data);
        self.locks.release(lock);
        let body = result?;
        self.sample_backlog();
        self.high_water = self.high_water.max(lb0 + nblocks);

        let ops = self.ops();
        let mut chain = vec![ops.driver(client)];
        if self.cfg.lock_broadcast {
            chain.push(ops.lock_round(client));
        }
        chain.push(body);
        Ok(seq(chain))
    }

    /// Scheme-driver dispatch: hand the admitted, locked write to the
    /// driver matching the layout's write scheme.
    fn write_locked(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let driver = scheme::driver_for(self.layout.write_scheme());
        let mut ctx = WriteCtx {
            layout: self.layout.as_ref(),
            plane: &mut self.plane,
            faults: &self.faults,
            cluster: &self.cluster,
            cfg: &self.cfg,
            images: &mut self.images,
        };
        driver.write(&mut ctx, client, lb0, nblocks, data)
    }

    /// Flush every still-buffered image group (partial groups included) as
    /// background writes. Call at sync points; the returned plan performs
    /// the deferred mirror traffic.
    pub fn flush_images(&mut self) -> Plan {
        let all = self.images.drain_all();
        if all.is_empty() {
            return Plan::Noop;
        }
        let ops = self.ops();
        par(ImageQueue::flush_plans(&ops, all))
    }

    /// Number of image blocks currently buffered for deferred flushing.
    /// With [`CddConfig::max_image_backlog`] set this gauge is clamped at
    /// the bound between requests.
    pub fn pending_image_blocks(&self) -> usize {
        self.images.len()
    }

    /// Read `nblocks` logical blocks starting at `lb0` for node `client`.
    /// Returns the bytes (already materialized from the functional plane)
    /// and the timing plan.
    pub fn read(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
    ) -> Result<(Vec<u8>, Plan), IoError> {
        frontend::validate_range(lb0, nblocks, self.capacity_blocks())?;
        let bs = self.block_size() as usize;
        let mut out = vec![0u8; nblocks as usize * bs];

        // Partition: blocks with a live primary are balanced at run
        // granularity; the rest fall back to the degraded paths.
        let mut healthy = Vec::new();
        let mut forced_images = Vec::new();
        let mut reconstructs = Vec::new();
        for lb in lb0..lb0 + nblocks {
            let d = self.layout.locate_data(lb);
            if !self.faults.contains(d.disk) {
                healthy.push((lb, d));
                continue;
            }
            match self.layout.read_source(lb, &self.faults) {
                ReadSource::Primary(a) | ReadSource::Image(a) => forced_images.push((lb, a)),
                ReadSource::Reconstruct { siblings, parity } => {
                    reconstructs.push((lb, siblings, parity))
                }
                ReadSource::Lost => return Err(IoError::DataLoss { lb }),
            }
        }

        // Front end: run-level replica selection for the healthy primaries.
        let block_size = self.block_size();
        let mut physical: Vec<(usize, u64, u64, Vec<u64>)> = Vec::new(); // disk, start, len, lbs
        for run in merge_runs(healthy) {
            let choice =
                self.balancer.balance_run(self.layout.as_ref(), &self.faults, block_size, &run);
            match choice {
                Some((disk, start)) => physical.push((disk, start, run.len(), run.lbs)),
                None => physical.push((run.disk, run.start, run.len(), run.lbs)),
            }
        }

        // Functional reads.
        for (disk, start, _, lbs) in &physical {
            for (i, &lb) in lbs.iter().enumerate() {
                let off = (lb - lb0) as usize * bs;
                self.plane.read(*disk, start + i as u64, &mut out[off..off + bs])?;
            }
        }
        for &(lb, a) in &forced_images {
            let off = (lb - lb0) as usize * bs;
            self.plane.read(a.disk, a.block, &mut out[off..off + bs])?;
        }
        for (lb, siblings, parity) in &reconstructs {
            let off = (*lb - lb0) as usize * bs;
            let mut acc = self.plane.read_owned(parity.disk, parity.block)?;
            for (_, a) in siblings {
                let sib = self.plane.read_owned(a.disk, a.block)?;
                xor_into(&mut acc, &sib);
            }
            out[off..off + bs].copy_from_slice(&acc);
        }

        // Timing plan.
        let ops = self.ops();
        let mut branches: Vec<Plan> = Vec::new();
        for (disk, start, len, _) in &physical {
            branches.push(ops.read_run(client, *disk, *start, *len));
        }
        for run in merge_runs(forced_images) {
            branches.push(ops.read_run(client, run.disk, run.start, run.len()));
        }
        for (_, siblings, parity) in &reconstructs {
            let mut reads: Vec<Plan> =
                siblings.iter().map(|(_, a)| ops.read_run(client, a.disk, a.block, 1)).collect();
            reads.push(ops.read_run(client, parity.disk, parity.block, 1));
            let n_in = reads.len() as u64 + 1;
            branches.push(seq(vec![par(reads), ops.xor(client, n_in * bs as u64)]));
        }
        let plan = seq(vec![ops.driver(client), par(branches)]);
        Ok((out, plan))
    }

    /// Fail a disk: its contents are lost on the functional plane and all
    /// planning routes around it.
    pub fn fail_disk(&mut self, disk: usize) {
        self.faults.insert(disk);
        self.plane.fail(disk);
    }
}
