//! The cooperative-disk-driver I/O system: a single I/O space over the
//! whole cluster, as an explicit three-layer request pipeline.
//!
//! [`IoSystem`] binds a [`Layout`] (where blocks live), a [`Cluster`]
//! (which resources they cross), a [`DataPlane`] (the actual bytes) and
//! a [`Placer`] (the epoch-versioned slot→physical binding), and
//! orchestrates the layers:
//!
//! 1. **Front end / admission** ([`crate::frontend`]) — range and length
//!    validation (shared with the NFS baseline), epoch stamping, run
//!    coalescing, and replica selection for reads.
//! 2. **Consistency module** ([`crate::locks`]) — the replicated
//!    lock-group table; a write holds its group for the duration of the
//!    (logically instantaneous) functional update.
//! 3. **Scheme drivers** ([`crate::scheme`]) — one driver per
//!    [`raidx_core::WriteScheme`] executes the admitted write.
//! 4. **Data plane** ([`crate::image_queue`]) — the OSM write-behind
//!    queue buffering deferred mirror images, bounded by
//!    [`CddConfig::max_image_backlog`].
//!
//! Every request is executed **functionally** (bytes move now, so
//! correctness is checkable) and **temporally** (a [`Plan`] is returned
//! for the discrete-event engine, so performance is measurable).
//!
//! The orchestrator is split across three modules, all `impl IoSystem`:
//! this one holds the state and its accessors, [`crate::datapath`] the
//! read/write request paths, and [`crate::membership`] fault state and
//! the epoch-transition operations (disk add/remove/replace and the
//! incremental rebalance). Scrub and rebuild live in
//! [`crate::maintenance`].

use std::collections::{BTreeMap, BTreeSet};

use cluster::{Cluster, ClusterConfig, ClusterMap, DataPlane};
use raidx_core::{Arch, FaultSet, Layout};
use sim_core::trace::{AccessKind, TracePoint, Tracer};
use sim_core::{hb, Engine, SimTime};
use sim_net::PartitionMap;

use crate::config::CddConfig;
use crate::frontend::ReadBalancer;
use crate::image_queue::ImageQueue;
use crate::locks::LockGroupTable;
use crate::ops::OpBuilder;
use crate::placer::Placer;

pub use crate::error::IoError;

/// The single I/O space of one architecture over one cluster.
pub struct IoSystem {
    /// Cluster resource handles (public: workloads need node/NIC ids).
    pub cluster: Cluster,
    pub(crate) plane: DataPlane,
    pub(crate) layout: Box<dyn Layout>,
    pub(crate) cfg: CddConfig,
    /// Epoch-versioned slot→physical placement (identity until the first
    /// reconfiguration, so static runs take the untranslated fast path).
    pub(crate) placer: Placer,
    pub(crate) faults: FaultSet,
    /// Disks transiently offline (contents intact, I/O rejected). The
    /// paper's *transient* failure class: recovery resyncs only the
    /// parked blocks instead of rebuilding the whole disk.
    pub(crate) offline: FaultSet,
    /// Interconnect fault state: which nodes are cut off right now.
    pub(crate) partitions: PartitionMap,
    /// Degraded-write ledger: per unavailable *physical* disk, the
    /// logical blocks whose copy there was skipped and must be restored
    /// on recovery.
    pub(crate) parked: BTreeMap<usize, BTreeSet<u64>>,
    pub(crate) locks: LockGroupTable,
    pub(crate) high_water: u64,
    /// Data-plane write-behind buffer of the OSM image path (addresses
    /// are physical, so disk-level drains match the fault state).
    pub(crate) images: ImageQueue,
    /// Front-end replica selection for reads (load counters are indexed
    /// by logical slot, which never grows).
    pub(crate) balancer: ReadBalancer,
    /// Per-op lock-table occupancy samples `(op sequence number, records
    /// held while the op's grant was live)`, recorded only when
    /// [`IoSystem::enable_lock_metrics`] has been called. Op sequence is
    /// the timeline here — grants are scoped to the functional call, so
    /// a sim-time series would read as permanently empty.
    pub(crate) lock_samples: Option<Vec<(u64, usize)>>,
    /// Per-op image-backlog samples `(op sequence number, blocks buffered
    /// after the op)`, recorded alongside the lock samples. The backlog
    /// gauge of the write-behind bound.
    pub(crate) backlog_samples: Option<Vec<(u64, usize)>>,
    /// Monotone operation counter (writes), for the sample series.
    pub(crate) op_seq: u64,
    /// Request attempts that timed out against an unresponsive node.
    pub(crate) timeouts: u64,
    /// Requests that failed over to a replica after a timeout.
    pub(crate) failovers: u64,
    /// Optional observer of protocol-level [`TracePoint::Access`] events
    /// (lock grants/releases, SIOS reads/writes, OSM image surrenders).
    /// `None` keeps every emission site a single branch — the same
    /// zero-cost-when-disabled guarantee the engine's tracer gives.
    pub(crate) tracer: Option<Box<dyn Tracer>>,
    /// Synthetic protocol clock: one tick per traced operation. Access
    /// events are stamped with it (not engine time — the functional
    /// update is logically instantaneous), so every op's accesses share
    /// a timestamp distinct from every other op's.
    pub(crate) trace_ticks: u64,
    /// Per-client block caches with lock-group-grant coherence
    /// ([`crate::cache`]); `None` (the default) keeps every request path
    /// byte- and plan-identical to an uncached build.
    pub(crate) cache: Option<crate::cache::CacheSet>,
}

impl IoSystem {
    /// Build the cluster in `engine` and assemble the I/O space for `arch`.
    pub fn new(
        engine: &mut Engine,
        cluster_cfg: ClusterConfig,
        arch: Arch,
        cfg: CddConfig,
    ) -> Self {
        let blocks_per_disk = cluster_cfg.blocks_per_disk();
        let layout = raidx_core::layout_for(
            arch,
            cluster_cfg.nodes,
            cluster_cfg.disks_per_node,
            blocks_per_disk,
        );
        let plane = DataPlane::new(
            cluster_cfg.total_disks(),
            cluster_cfg.block_size as usize,
            blocks_per_disk,
        );
        let total_disks = cluster_cfg.total_disks();
        let nodes = cluster_cfg.nodes;
        let cluster = Cluster::build(cluster_cfg, engine);
        let balancer = ReadBalancer::new(cfg.read_balance, total_disks);
        let cache = cfg.cache.map(|c| crate::cache::CacheSet::new(c, nodes));
        IoSystem {
            cluster,
            plane,
            layout,
            cfg,
            placer: Placer::identity(total_disks),
            faults: FaultSet::none(),
            offline: FaultSet::none(),
            partitions: PartitionMap::new(),
            parked: BTreeMap::new(),
            locks: LockGroupTable::new(),
            high_water: 0,
            images: ImageQueue::new(),
            balancer,
            lock_samples: None,
            backlog_samples: None,
            op_seq: 0,
            timeouts: 0,
            failovers: 0,
            tracer: None,
            trace_ticks: 0,
            cache,
        }
    }

    /// Install a [`Tracer`] observing protocol-level cell accesses from
    /// now on (replacing any previous one). Install a clone of the same
    /// [`sim_core::EventLog`] here and in the engine to get one merged
    /// stream for the happens-before analyzer ([`sim_core::hb`]).
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer, restoring no-op tracing.
    pub fn clear_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Allocate the next protocol-clock tick (tracing enabled only).
    pub(crate) fn next_op_tick(&mut self) -> SimTime {
        let t = self.trace_ticks;
        self.trace_ticks += 1;
        SimTime(t)
    }

    /// Emit one `Access` trace point if a tracer is installed.
    pub(crate) fn trace_access(
        &mut self,
        at: SimTime,
        actor: u32,
        cell: u64,
        len: u64,
        kind: AccessKind,
    ) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(at, TracePoint::Access { task: actor, cell, len, kind });
        }
    }

    /// Emit image-surrender writes for blocks that left the OSM queue
    /// outside any client op (flush points, disk drains).
    pub(crate) fn trace_image_drain(&mut self, lbs: &[u64]) {
        if self.tracer.is_none() || lbs.is_empty() {
            return;
        }
        let at = self.next_op_tick();
        for &lb in lbs {
            self.trace_access(at, hb::OSM_ACTOR, hb::image_cell(lb), 1, AccessKind::Write);
        }
    }

    /// The layout driving this system.
    pub fn layout(&self) -> &dyn Layout {
        self.layout.as_ref()
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.cluster.cfg.block_size
    }

    /// Client-visible capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.layout.capacity_blocks()
    }

    /// Current placement epoch (0 until the first reconfiguration).
    pub fn epoch(&self) -> u64 {
        self.placer.epoch()
    }

    /// The epoch-versioned cluster map (roster states, past bindings).
    pub fn cluster_map(&self) -> &ClusterMap {
        self.placer.map()
    }

    /// Blocks still awaiting migration after an epoch transition (0 when
    /// no migration is in flight).
    pub fn migration_pending(&self) -> usize {
        self.placer.pending_blocks()
    }

    /// Currently failed disks (permanent: contents lost).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Disks currently transiently offline (contents intact).
    pub fn offline_disks(&self) -> &FaultSet {
        &self.offline
    }

    /// Current interconnect partition state.
    pub fn partitions(&self) -> &PartitionMap {
        &self.partitions
    }

    /// Logical blocks parked against physical `disk` by degraded writes.
    pub fn parked_blocks(&self, disk: usize) -> usize {
        self.parked.get(&disk).map_or(0, BTreeSet::len)
    }

    /// Total parked blocks across all disks.
    pub fn parked_total(&self) -> usize {
        self.parked.values().map(BTreeSet::len).sum()
    }

    /// Request attempts that timed out against an unresponsive node.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Requests that failed over to a surviving replica after a timeout.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Highest written logical block + 1.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Lock-group grants issued so far.
    pub fn lock_grants(&self) -> u64 {
        self.locks.grants()
    }

    /// Lock-group acquisitions rejected due to an overlapping grant.
    pub fn lock_conflicts(&self) -> u64 {
        self.locks.conflicts()
    }

    /// Lock-group records currently held (diagnostics; normally zero at
    /// rest since grants are scoped to each functional call).
    pub fn locks_held(&self) -> usize {
        self.locks.held().count()
    }

    /// Start recording per-op lock-table occupancy and image-backlog
    /// samples (see [`IoSystem::take_lock_samples`] and
    /// [`IoSystem::take_backlog_samples`]); clears any previous samples.
    pub fn enable_lock_metrics(&mut self) {
        self.lock_samples = Some(Vec::new());
        self.backlog_samples = Some(Vec::new());
    }

    /// Take the recorded `(op sequence, lock records held)` samples,
    /// leaving recording enabled. The `trace_dump` exporter turns these
    /// into the CDD lock-table occupancy series.
    pub fn take_lock_samples(&mut self) -> Vec<(u64, usize)> {
        self.lock_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Take the recorded `(op sequence, buffered image blocks)` samples,
    /// leaving recording enabled. With a backlog bound configured this
    /// series never exceeds the bound.
    pub fn take_backlog_samples(&mut self) -> Vec<(u64, usize)> {
        self.backlog_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Start recording the lock-group grant/release trace (consumed by
    /// the `raidx-verify` lock-order analyzer).
    pub fn enable_lock_trace(&mut self) {
        self.locks.enable_trace();
    }

    /// Take the recorded lock trace, leaving recording enabled.
    pub fn take_lock_trace(&mut self) -> Vec<crate::locks::LockEvent> {
        self.locks.take_trace()
    }

    /// Direct (test) access to the functional plane.
    pub fn plane_mut(&mut self) -> &mut DataPlane {
        &mut self.plane
    }

    /// Flush every still-buffered image group (partial groups included) as
    /// background writes. Call at sync points; the returned plan performs
    /// the deferred mirror traffic.
    pub fn flush_images(&mut self) -> sim_core::Plan {
        let all = self.images.drain_all();
        if all.is_empty() {
            return sim_core::Plan::Noop;
        }
        if self.tracer.is_some() {
            let lbs: Vec<u64> = all.iter().map(|p| p.lb).collect();
            self.trace_image_drain(&lbs);
        }
        let ops = self.ops();
        sim_core::plan::par(ImageQueue::flush_plans(&ops, all))
    }

    /// Number of image blocks currently buffered for deferred flushing.
    /// With [`CddConfig::max_image_backlog`] set this gauge is clamped at
    /// the bound between requests.
    pub fn pending_image_blocks(&self) -> usize {
        self.images.len()
    }

    pub(crate) fn ops(&self) -> OpBuilder<'_> {
        OpBuilder { cluster: &self.cluster, cfg: &self.cfg }
    }

    /// Record one `(op sequence, records held)` sample if lock metrics
    /// recording is on. Called while the current op's grant is live.
    pub(crate) fn sample_locks(&mut self) {
        let held = self.locks.held().count();
        let seq = self.op_seq;
        self.op_seq += 1;
        if let Some(samples) = self.lock_samples.as_mut() {
            samples.push((seq, held));
        }
    }

    /// Record the post-op image backlog under the same op sequence the
    /// lock sample used.
    pub(crate) fn sample_backlog(&mut self) {
        let pending = self.images.len();
        let seq = self.op_seq.saturating_sub(1);
        if let Some(samples) = self.backlog_samples.as_mut() {
            samples.push((seq, pending));
        }
    }
}
