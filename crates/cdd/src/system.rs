//! The cooperative-disk-driver I/O system: a single I/O space over the
//! whole cluster, as an explicit three-layer request pipeline.
//!
//! [`IoSystem`] binds a [`Layout`] (where blocks live), a [`Cluster`]
//! (which resources they cross) and a [`DataPlane`] (the actual bytes),
//! and orchestrates the layers:
//!
//! 1. **Front end / admission** ([`crate::frontend`]) — range and length
//!    validation (shared with the NFS baseline), run coalescing, and
//!    replica selection for reads.
//! 2. **Consistency module** ([`crate::locks`]) — the replicated
//!    lock-group table; a write holds its group for the duration of the
//!    (logically instantaneous) functional update.
//! 3. **Scheme drivers** ([`crate::scheme`]) — one driver per
//!    [`raidx_core::WriteScheme`] executes the admitted write.
//! 4. **Data plane** ([`crate::image_queue`]) — the OSM write-behind
//!    queue buffering deferred mirror images, bounded by
//!    [`CddConfig::max_image_backlog`].
//!
//! Every request is executed **functionally** (bytes move now, so
//! correctness is checkable) and **temporally** (a [`Plan`] is returned
//! for the discrete-event engine, so performance is measurable). Scrub
//! and rebuild live in [`crate::maintenance`].

use std::collections::{BTreeMap, BTreeSet};

use cluster::{xor_into, Cluster, ClusterConfig, DataPlane};
use raidx_core::{Arch, FaultSet, Layout, ReadSource};
use sim_core::plan::{delay, par, seq};
use sim_core::trace::{AccessKind, TracePoint, Tracer};
use sim_core::{hb, Engine, Plan, SimTime};
use sim_net::PartitionMap;

use crate::config::CddConfig;
use crate::frontend::{self, ReadBalancer};
use crate::image_queue::ImageQueue;
use crate::locks::LockGroupTable;
use crate::ops::OpBuilder;
use crate::runs::merge_runs;
use crate::scheme::{self, WriteCtx};

pub use crate::error::IoError;

/// The single I/O space of one architecture over one cluster.
pub struct IoSystem {
    /// Cluster resource handles (public: workloads need node/NIC ids).
    pub cluster: Cluster,
    pub(crate) plane: DataPlane,
    pub(crate) layout: Box<dyn Layout>,
    pub(crate) cfg: CddConfig,
    pub(crate) faults: FaultSet,
    /// Disks transiently offline (contents intact, I/O rejected). The
    /// paper's *transient* failure class: recovery resyncs only the
    /// parked blocks instead of rebuilding the whole disk.
    pub(crate) offline: FaultSet,
    /// Interconnect fault state: which nodes are cut off right now.
    pub(crate) partitions: PartitionMap,
    /// Degraded-write ledger: per unavailable disk, the logical blocks
    /// whose copy there was skipped and must be restored on recovery.
    pub(crate) parked: BTreeMap<usize, BTreeSet<u64>>,
    pub(crate) locks: LockGroupTable,
    pub(crate) high_water: u64,
    /// Data-plane write-behind buffer of the OSM image path.
    pub(crate) images: ImageQueue,
    /// Front-end replica selection for reads.
    pub(crate) balancer: ReadBalancer,
    /// Per-op lock-table occupancy samples `(op sequence number, records
    /// held while the op's grant was live)`, recorded only when
    /// [`IoSystem::enable_lock_metrics`] has been called. Op sequence is
    /// the timeline here — grants are scoped to the functional call, so
    /// a sim-time series would read as permanently empty.
    lock_samples: Option<Vec<(u64, usize)>>,
    /// Per-op image-backlog samples `(op sequence number, blocks buffered
    /// after the op)`, recorded alongside the lock samples. The backlog
    /// gauge of the write-behind bound.
    backlog_samples: Option<Vec<(u64, usize)>>,
    /// Monotone operation counter (writes), for the sample series.
    op_seq: u64,
    /// Request attempts that timed out against an unresponsive node.
    timeouts: u64,
    /// Requests that failed over to a replica after a timeout.
    failovers: u64,
    /// Optional observer of protocol-level [`TracePoint::Access`] events
    /// (lock grants/releases, SIOS reads/writes, OSM image surrenders).
    /// `None` keeps every emission site a single branch — the same
    /// zero-cost-when-disabled guarantee the engine's tracer gives.
    tracer: Option<Box<dyn Tracer>>,
    /// Synthetic protocol clock: one tick per traced operation. Access
    /// events are stamped with it (not engine time — the functional
    /// update is logically instantaneous), so every op's accesses share
    /// a timestamp distinct from every other op's.
    trace_ticks: u64,
}

impl IoSystem {
    /// Build the cluster in `engine` and assemble the I/O space for `arch`.
    pub fn new(
        engine: &mut Engine,
        cluster_cfg: ClusterConfig,
        arch: Arch,
        cfg: CddConfig,
    ) -> Self {
        let blocks_per_disk = cluster_cfg.blocks_per_disk();
        let layout = raidx_core::layout_for(
            arch,
            cluster_cfg.nodes,
            cluster_cfg.disks_per_node,
            blocks_per_disk,
        );
        let plane = DataPlane::new(
            cluster_cfg.total_disks(),
            cluster_cfg.block_size as usize,
            blocks_per_disk,
        );
        let total_disks = cluster_cfg.total_disks();
        let cluster = Cluster::build(cluster_cfg, engine);
        let balancer = ReadBalancer::new(cfg.read_balance, total_disks);
        IoSystem {
            cluster,
            plane,
            layout,
            cfg,
            faults: FaultSet::none(),
            offline: FaultSet::none(),
            partitions: PartitionMap::new(),
            parked: BTreeMap::new(),
            locks: LockGroupTable::new(),
            high_water: 0,
            images: ImageQueue::new(),
            balancer,
            lock_samples: None,
            backlog_samples: None,
            op_seq: 0,
            timeouts: 0,
            failovers: 0,
            tracer: None,
            trace_ticks: 0,
        }
    }

    /// Install a [`Tracer`] observing protocol-level cell accesses from
    /// now on (replacing any previous one). Install a clone of the same
    /// [`sim_core::EventLog`] here and in the engine to get one merged
    /// stream for the happens-before analyzer ([`sim_core::hb`]).
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer, restoring no-op tracing.
    pub fn clear_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Allocate the next protocol-clock tick (tracing enabled only).
    fn next_op_tick(&mut self) -> SimTime {
        let t = self.trace_ticks;
        self.trace_ticks += 1;
        SimTime(t)
    }

    /// Emit one `Access` trace point if a tracer is installed.
    fn trace_access(&mut self, at: SimTime, actor: u32, cell: u64, len: u64, kind: AccessKind) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(at, TracePoint::Access { task: actor, cell, len, kind });
        }
    }

    /// Emit image-surrender writes for blocks that left the OSM queue
    /// outside any client op (flush points, disk drains).
    fn trace_image_drain(&mut self, lbs: &[u64]) {
        if self.tracer.is_none() || lbs.is_empty() {
            return;
        }
        let at = self.next_op_tick();
        for &lb in lbs {
            self.trace_access(at, hb::OSM_ACTOR, hb::image_cell(lb), 1, AccessKind::Write);
        }
    }

    /// The layout driving this system.
    pub fn layout(&self) -> &dyn Layout {
        self.layout.as_ref()
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.cluster.cfg.block_size
    }

    /// Client-visible capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.layout.capacity_blocks()
    }

    /// Currently failed disks (permanent: contents lost).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Disks currently transiently offline (contents intact).
    pub fn offline_disks(&self) -> &FaultSet {
        &self.offline
    }

    /// Current interconnect partition state.
    pub fn partitions(&self) -> &PartitionMap {
        &self.partitions
    }

    /// Disks whose *media* is unavailable: failed or transiently offline.
    /// Scrub and recovery planning use this set — connectivity does not
    /// matter to on-disk redundancy relations.
    pub fn storage_faults(&self) -> FaultSet {
        let mut s = self.faults.clone();
        for d in self.offline.iter() {
            s.insert(d);
        }
        s
    }

    /// Disks `client` cannot use right now: failed, offline, or hosted on
    /// a node unreachable from `client` through the current partitions.
    /// Every request is planned against this set, so in-flight partitions
    /// are observed — this is the client module's view of the array.
    pub fn effective_faults(&self, client: usize) -> FaultSet {
        let mut eff = self.storage_faults();
        if !self.partitions.is_empty() {
            for g in 0..self.cluster.ndisks() {
                if !self.partitions.reachable(client, self.cluster.node_of_disk(g)) {
                    eff.insert(g);
                }
            }
        }
        eff
    }

    /// Cut `node` off from the switch: remote clients lose access to its
    /// disks (and it loses access to theirs) until [`IoSystem::heal_node`].
    pub fn partition_node(&mut self, node: usize) {
        self.partitions.partition(node);
    }

    /// Reconnect `node`. The caller should then resync the blocks parked
    /// against its disks ([`IoSystem::resync_parked`]) before trusting
    /// redundancy again.
    pub fn heal_node(&mut self, node: usize) {
        self.partitions.heal(node);
    }

    /// Logical blocks parked against `disk` by degraded writes.
    pub fn parked_blocks(&self, disk: usize) -> usize {
        self.parked.get(&disk).map_or(0, BTreeSet::len)
    }

    /// Total parked blocks across all disks.
    pub fn parked_total(&self) -> usize {
        self.parked.values().map(BTreeSet::len).sum()
    }

    /// Request attempts that timed out against an unresponsive node.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Requests that failed over to a surviving replica after a timeout.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Highest written logical block + 1.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Lock-group grants issued so far.
    pub fn lock_grants(&self) -> u64 {
        self.locks.grants()
    }

    /// Lock-group acquisitions rejected due to an overlapping grant.
    pub fn lock_conflicts(&self) -> u64 {
        self.locks.conflicts()
    }

    /// Lock-group records currently held (diagnostics; normally zero at
    /// rest since grants are scoped to each functional call).
    pub fn locks_held(&self) -> usize {
        self.locks.held().count()
    }

    /// Start recording per-op lock-table occupancy and image-backlog
    /// samples (see [`IoSystem::take_lock_samples`] and
    /// [`IoSystem::take_backlog_samples`]); clears any previous samples.
    pub fn enable_lock_metrics(&mut self) {
        self.lock_samples = Some(Vec::new());
        self.backlog_samples = Some(Vec::new());
    }

    /// Take the recorded `(op sequence, lock records held)` samples,
    /// leaving recording enabled. The `trace_dump` exporter turns these
    /// into the CDD lock-table occupancy series.
    pub fn take_lock_samples(&mut self) -> Vec<(u64, usize)> {
        self.lock_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Take the recorded `(op sequence, buffered image blocks)` samples,
    /// leaving recording enabled. With a backlog bound configured this
    /// series never exceeds the bound.
    pub fn take_backlog_samples(&mut self) -> Vec<(u64, usize)> {
        self.backlog_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Start recording the lock-group grant/release trace (consumed by
    /// the `raidx-verify` lock-order analyzer).
    pub fn enable_lock_trace(&mut self) {
        self.locks.enable_trace();
    }

    /// Take the recorded lock trace, leaving recording enabled.
    pub fn take_lock_trace(&mut self) -> Vec<crate::locks::LockEvent> {
        self.locks.take_trace()
    }

    /// Direct (test) access to the functional plane.
    pub fn plane_mut(&mut self) -> &mut DataPlane {
        &mut self.plane
    }

    pub(crate) fn ops(&self) -> OpBuilder<'_> {
        OpBuilder { cluster: &self.cluster, cfg: &self.cfg }
    }

    /// Record one `(op sequence, records held)` sample if lock metrics
    /// recording is on. Called while the current op's grant is live.
    fn sample_locks(&mut self) {
        let held = self.locks.held().count();
        let seq = self.op_seq;
        self.op_seq += 1;
        if let Some(samples) = self.lock_samples.as_mut() {
            samples.push((seq, held));
        }
    }

    /// Record the post-op image backlog under the same op sequence the
    /// lock sample used.
    fn sample_backlog(&mut self) {
        let pending = self.images.len();
        let seq = self.op_seq.saturating_sub(1);
        if let Some(samples) = self.backlog_samples.as_mut() {
            samples.push((seq, pending));
        }
    }

    /// Write `data` (a whole number of blocks) at logical block `lb0` on
    /// behalf of node `client`. Returns the timing plan; the bytes are
    /// already durable on the functional plane when this returns.
    pub fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        // Front end: admission.
        let bs = self.block_size() as usize;
        let nblocks = frontend::validate_write(bs, self.capacity_blocks(), lb0, data.len())?;

        // Client module: plan against what this client can actually reach.
        // An alive-but-unreachable copy costs one timed-out attempt before
        // the degraded write proceeds without it (parking the copy); with
        // retries disabled the request surfaces the partition instead.
        let eff = self.effective_faults(client);
        let blocked = self.blocked_peer(&eff, lb0, nblocks);
        if let Some(node) = blocked {
            if self.cfg.max_retries == 0 {
                return Err(IoError::Unreachable { node, attempts: 1 });
            }
        }

        // Consistency module: atomically acquire the lock group, held for
        // the duration of the (logically instantaneous) functional update.
        let lock = self.locks.acquire(client, lb0, nblocks).map_err(IoError::Lock)?;
        self.sample_locks();
        // Protocol trace: the whole op shares one synthetic tick, in
        // program order grant → write → surrenders → release.
        let tick = if self.tracer.is_some() { Some(self.next_op_tick()) } else { None };
        let actor = hb::client_actor(client);
        if let Some(at) = tick {
            self.trace_access(at, actor, hb::sios_cell(lb0), nblocks, AccessKind::Acquire);
        }
        let mut surrendered = if tick.is_some() { Some(Vec::new()) } else { None };
        let result = self.write_locked(client, &eff, lb0, nblocks, data, surrendered.as_mut());
        self.locks.release(lock);
        if let Some(at) = tick {
            if result.is_ok() {
                self.trace_access(at, actor, hb::sios_cell(lb0), nblocks, AccessKind::Write);
                for lb in surrendered.as_deref().unwrap_or(&[]) {
                    self.trace_access(at, actor, hb::image_cell(*lb), 1, AccessKind::Write);
                }
            }
            self.trace_access(at, actor, hb::sios_cell(lb0), nblocks, AccessKind::Release);
        }
        let body = match result {
            Ok(body) => body,
            Err(IoError::DataLoss { lb }) => return Err(self.classify_loss(client, lb)),
            Err(e) => return Err(e),
        };
        self.sample_backlog();
        self.high_water = self.high_water.max(lb0 + nblocks);

        let ops = self.ops();
        let mut chain = vec![ops.driver(client)];
        if self.cfg.lock_broadcast {
            chain.push(ops.lock_round(client));
        }
        if blocked.is_some() {
            self.timeouts += 1;
            self.failovers += 1;
            chain.push(delay(self.cfg.request_timeout));
        }
        chain.push(body);
        Ok(seq(chain))
    }

    /// Scheme-driver dispatch: hand the admitted, locked write to the
    /// driver matching the layout's write scheme, planned against the
    /// requesting client's effective fault set.
    fn write_locked(
        &mut self,
        client: usize,
        eff: &FaultSet,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
        surrendered: Option<&mut Vec<u64>>,
    ) -> Result<Plan, IoError> {
        let driver = scheme::driver_for(self.layout.write_scheme());
        let mut ctx = WriteCtx {
            layout: self.layout.as_ref(),
            plane: &mut self.plane,
            faults: eff,
            cluster: &self.cluster,
            cfg: &self.cfg,
            images: &mut self.images,
            parked: &mut self.parked,
            surrendered,
        };
        driver.write(&mut ctx, client, lb0, nblocks, data)
    }

    /// First alive-but-unreachable peer node involved in a request over
    /// `[lb0, lb0+nblocks)`, if any — the node a timed-out attempt is
    /// charged against.
    fn blocked_peer(&self, eff: &FaultSet, lb0: u64, nblocks: u64) -> Option<usize> {
        if self.partitions.is_empty() {
            return None;
        }
        let storage = self.storage_faults();
        for lb in lb0..lb0 + nblocks {
            let mut addrs = vec![self.layout.locate_data(lb)];
            addrs.extend(self.layout.locate_images(lb));
            addrs.extend(self.layout.locate_parity(lb));
            for a in addrs {
                if eff.contains(a.disk) && !storage.contains(a.disk) {
                    return Some(self.cluster.node_of_disk(a.disk));
                }
            }
        }
        None
    }

    /// Refine a driver-level `DataLoss` into the client-visible error:
    /// if every copy is gone from the *media*, it really is data loss;
    /// if the bytes survive behind a partition, the request failed only
    /// on connectivity and must say so (and must not hang).
    fn classify_loss(&self, client: usize, lb: u64) -> IoError {
        let storage = self.storage_faults();
        if matches!(self.layout.read_source(lb, &storage), ReadSource::Lost) {
            return IoError::DataLoss { lb };
        }
        let attempts = 1 + self.cfg.max_retries;
        let mut addrs = vec![self.layout.locate_data(lb)];
        addrs.extend(self.layout.locate_images(lb));
        for a in addrs {
            let node = self.cluster.node_of_disk(a.disk);
            if !self.partitions.reachable(client, node) {
                return IoError::Unreachable { node, attempts };
            }
        }
        // Unreachable through parity placement only.
        IoError::Unreachable { node: client, attempts }
    }

    /// Flush every still-buffered image group (partial groups included) as
    /// background writes. Call at sync points; the returned plan performs
    /// the deferred mirror traffic.
    pub fn flush_images(&mut self) -> Plan {
        let all = self.images.drain_all();
        if all.is_empty() {
            return Plan::Noop;
        }
        if self.tracer.is_some() {
            let lbs: Vec<u64> = all.iter().map(|p| p.lb).collect();
            self.trace_image_drain(&lbs);
        }
        let ops = self.ops();
        par(ImageQueue::flush_plans(&ops, all))
    }

    /// Number of image blocks currently buffered for deferred flushing.
    /// With [`CddConfig::max_image_backlog`] set this gauge is clamped at
    /// the bound between requests.
    pub fn pending_image_blocks(&self) -> usize {
        self.images.len()
    }

    /// Read `nblocks` logical blocks starting at `lb0` for node `client`.
    /// Returns the bytes (already materialized from the functional plane)
    /// and the timing plan.
    pub fn read(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
    ) -> Result<(Vec<u8>, Plan), IoError> {
        frontend::validate_range(lb0, nblocks, self.capacity_blocks())?;
        let bs = self.block_size() as usize;
        let mut out = vec![0u8; nblocks as usize * bs];

        // Client module: route around everything this client cannot reach.
        let eff = self.effective_faults(client);
        let storage = self.storage_faults();

        // Partition: blocks with a usable primary are balanced at run
        // granularity; the rest fall back to the degraded paths. A
        // primary that is alive but behind a partition costs one timed-out
        // attempt before the client retries against a replica.
        let mut healthy = Vec::new();
        let mut forced_images = Vec::new();
        let mut reconstructs = Vec::new();
        let mut blocked: Option<usize> = None;
        for lb in lb0..lb0 + nblocks {
            let d = self.layout.locate_data(lb);
            if !eff.contains(d.disk) {
                healthy.push((lb, d));
                continue;
            }
            if !storage.contains(d.disk) {
                blocked.get_or_insert(self.cluster.node_of_disk(d.disk));
            }
            match self.layout.read_source(lb, &eff) {
                ReadSource::Primary(a) | ReadSource::Image(a) => forced_images.push((lb, a)),
                ReadSource::Reconstruct { siblings, parity } => {
                    reconstructs.push((lb, siblings, parity))
                }
                ReadSource::Lost => return Err(self.classify_loss(client, lb)),
            }
        }
        if let Some(node) = blocked {
            if self.cfg.max_retries == 0 {
                return Err(IoError::Unreachable { node, attempts: 1 });
            }
            self.timeouts += 1;
            self.failovers += 1;
        }

        // Front end: run-level replica selection for the healthy primaries.
        let block_size = self.block_size();
        let mut physical: Vec<(usize, u64, u64, Vec<u64>)> = Vec::new(); // disk, start, len, lbs
        for run in merge_runs(healthy) {
            let choice = self.balancer.balance_run(self.layout.as_ref(), &eff, block_size, &run);
            match choice {
                Some((disk, start)) => physical.push((disk, start, run.len(), run.lbs)),
                None => physical.push((run.disk, run.start, run.len(), run.lbs)),
            }
        }

        // Functional reads.
        for (disk, start, _, lbs) in &physical {
            for (i, &lb) in lbs.iter().enumerate() {
                let off = (lb - lb0) as usize * bs;
                self.plane.read(*disk, start + i as u64, &mut out[off..off + bs])?;
            }
        }
        for &(lb, a) in &forced_images {
            let off = (lb - lb0) as usize * bs;
            self.plane.read(a.disk, a.block, &mut out[off..off + bs])?;
        }
        for (lb, siblings, parity) in &reconstructs {
            let off = (*lb - lb0) as usize * bs;
            let mut acc = self.plane.read_owned(parity.disk, parity.block)?;
            for (_, a) in siblings {
                let sib = self.plane.read_owned(a.disk, a.block)?;
                xor_into(&mut acc, &sib);
            }
            out[off..off + bs].copy_from_slice(&acc);
        }

        // Timing plan.
        let ops = self.ops();
        let mut branches: Vec<Plan> = Vec::new();
        for (disk, start, len, _) in &physical {
            branches.push(ops.read_run(client, *disk, *start, *len));
        }
        for run in merge_runs(forced_images) {
            branches.push(ops.read_run(client, run.disk, run.start, run.len()));
        }
        for (_, siblings, parity) in &reconstructs {
            let mut reads: Vec<Plan> =
                siblings.iter().map(|(_, a)| ops.read_run(client, a.disk, a.block, 1)).collect();
            reads.push(ops.read_run(client, parity.disk, parity.block, 1));
            let n_in = reads.len() as u64 + 1;
            branches.push(seq(vec![par(reads), ops.xor(client, n_in * bs as u64)]));
        }
        let mut chain = vec![ops.driver(client)];
        if blocked.is_some() {
            // The failed attempt against the unresponsive primary: the
            // client waits out the full request timeout before retrying
            // against the replica — failover is bounded, never a hang.
            chain.push(delay(self.cfg.request_timeout));
        }
        chain.push(par(branches));
        if self.tracer.is_some() {
            // Reads are lock-free by design; the trace point lets the
            // analyzer's (off-by-default) read/write auditor see them.
            let at = self.next_op_tick();
            self.trace_access(
                at,
                hb::client_actor(client),
                hb::sios_cell(lb0),
                nblocks,
                AccessKind::Read,
            );
        }
        Ok((out, seq(chain)))
    }

    /// Record `lb`'s copy on unavailable `disk` as needing restoration.
    pub(crate) fn park(&mut self, disk: usize, lb: u64) {
        self.parked.entry(disk).or_default().insert(lb);
    }

    /// Fail a disk *permanently*: its contents are lost on the functional
    /// plane and all planning routes around it. Any image blocks still
    /// buffered for it in the write-behind queue are drained (flushing
    /// them later would write into a dead disk and leak queue accounting)
    /// and parked for the eventual rebuild.
    pub fn fail_disk(&mut self, disk: usize) {
        self.faults.insert(disk);
        self.offline.remove(disk);
        self.plane.fail(disk);
        let drained = self.images.remove_disk(disk);
        if self.tracer.is_some() {
            let lbs: Vec<u64> = drained.iter().map(|p| p.lb).collect();
            self.trace_image_drain(&lbs);
        }
        for img in drained {
            self.park(disk, img.lb);
        }
    }

    /// Take a disk *transiently* offline: I/O is rejected but the
    /// contents survive. Pending image-queue entries for it are drained
    /// and parked, exactly as in [`IoSystem::fail_disk`]; recovery is the
    /// cheap path — [`IoSystem::recover_disk_transient`] resyncs only the
    /// parked blocks from surviving copies instead of rebuilding the
    /// whole disk.
    pub fn fail_disk_transient(&mut self, disk: usize) {
        assert!(!self.faults.contains(disk), "disk already permanently failed");
        self.offline.insert(disk);
        self.plane.set_offline(disk, true);
        let drained = self.images.remove_disk(disk);
        if self.tracer.is_some() {
            let lbs: Vec<u64> = drained.iter().map(|p| p.lb).collect();
            self.trace_image_drain(&lbs);
        }
        for img in drained {
            self.park(disk, img.lb);
        }
    }

    /// A node crashed: cut it off from the switch and take its disks
    /// transiently offline (the machine is down; the media survives a
    /// reboot). Image-queue entries buffered *by* the crashed node are
    /// re-homed to each target disk's owner node, which holds the
    /// already-written primary locally.
    pub fn crash_node(&mut self, node: usize) {
        self.partitions.partition(node);
        for g in 0..self.cluster.ndisks() {
            if self.cluster.node_of_disk(g) == node
                && !self.faults.contains(g)
                && !self.offline.contains(g)
            {
                self.fail_disk_transient(g);
            }
        }
        let owners: Vec<usize> =
            (0..self.cluster.ndisks()).map(|g| self.cluster.node_of_disk(g)).collect();
        self.images.reassign_client(node, |p| owners[p.addr.disk]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{shape, shape_with};
    use raidx_core::Arch;
    use sim_core::SimDuration;

    /// Satellite regression: failing a disk must drain that disk's
    /// buffered image-queue entries (parking them), and the queue's
    /// length accounting must stay consistent with what remains.
    #[test]
    fn fail_disk_drains_pending_image_queue_entries() {
        let (_engine, mut sys) = shape(4, 2, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        for lb in 0..6u64 {
            sys.write(0, lb, &vec![0x3C; bs]).expect("seed write");
        }
        let before = sys.pending_image_blocks();
        assert!(before > 0, "RAID-x must buffer write-behind images");
        let img_disk = (0..sys.cluster.ndisks())
            .find(|&g| sys.images.blocks_on_disk(g) > 0)
            .expect("some disk has buffered images");
        sys.fail_disk(img_disk);
        let after = sys.pending_image_blocks();
        assert!(after < before, "no entries drained for the failed disk");
        assert_eq!(
            before - after,
            sys.parked_blocks(img_disk),
            "every drained image must be parked for rebuild"
        );
        // Accounting survives a full flush of the survivors.
        let _ = sys.flush_images();
        assert_eq!(sys.pending_image_blocks(), 0);
    }

    /// Transient offline takes the same drain path as permanent failure.
    #[test]
    fn transient_offline_also_drains_image_queue() {
        let (_engine, mut sys) = shape(4, 2, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        for lb in 0..6u64 {
            sys.write(0, lb, &vec![0x3C; bs]).expect("seed write");
        }
        let before = sys.pending_image_blocks();
        let img_disk = (0..sys.cluster.ndisks())
            .find(|&g| sys.images.blocks_on_disk(g) > 0)
            .expect("some disk has buffered images");
        sys.fail_disk_transient(img_disk);
        assert_eq!(before - sys.pending_image_blocks(), sys.parked_blocks(img_disk));
        let _ = sys.flush_images();
        assert_eq!(sys.pending_image_blocks(), 0);
    }

    /// Satellite: a partitioned peer must surface a *distinct* error —
    /// not a hang, not `DataLoss` — when retries are disabled.
    #[test]
    fn partition_with_retries_disabled_surfaces_unreachable() {
        let cfg = CddConfig { max_retries: 0, ..CddConfig::default() };
        let (_engine, mut sys) = shape_with(4, 1, 8 << 20, Arch::RaidX, cfg);
        let bs = sys.block_size() as usize;
        let lb = (0..64).find(|&lb| sys.layout().locate_data(lb).disk == 3).expect("lb on disk 3");
        sys.write(0, lb, &vec![9u8; bs]).expect("healthy write");
        sys.partition_node(3);
        match sys.read(0, lb, 1) {
            Err(IoError::Unreachable { node, attempts }) => {
                assert_eq!(node, 3);
                assert_eq!(attempts, 1, "no retries configured, one attempt only");
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
        match sys.write(0, lb, &vec![8u8; bs]) {
            Err(IoError::Unreachable { node, .. }) => assert_eq!(node, 3),
            other => panic!("expected Unreachable, got {other:?}"),
        }
        // The partitioned node itself still reaches its local disk.
        let (got, _) = sys.read(3, lb, 1).expect("local read survives partition");
        assert_eq!(got, vec![9u8; bs]);
    }

    /// Satellite: with retries enabled the client fails over to the
    /// mirror replica, paying exactly one bounded request timeout —
    /// never an unbounded wait.
    #[test]
    fn partition_failover_is_bounded_by_the_request_timeout() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let lb = (0..64).find(|&lb| sys.layout().locate_data(lb).disk == 3).expect("lb on disk 3");
        sys.write(0, lb, &vec![5u8; bs]).expect("healthy write");
        engine.run().expect("drain seed");
        sys.partition_node(3);
        let t0 = engine.now();
        let (got, plan) = sys.read(0, lb, 1).expect("failover read");
        assert_eq!(got, vec![5u8; bs], "replica must serve the bytes");
        assert_eq!(sys.timeouts(), 1);
        assert_eq!(sys.failovers(), 1);
        engine.spawn_job("failover-read", plan);
        engine.run().expect("failover read run");
        let elapsed = engine.now().since(t0);
        let timeout = sys.cfg.request_timeout;
        assert!(elapsed >= timeout, "failover must pay the timed-out attempt");
        assert!(
            elapsed < SimDuration(timeout.0 * 2),
            "failover took {elapsed:?}, expected within 2x the {timeout:?} timeout"
        );
    }

    /// A degraded write under a partition parks the unreachable copy and
    /// still acknowledges; the parked ledger drives the later resync.
    #[test]
    fn degraded_write_parks_unreachable_copies() {
        let (_engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        sys.partition_node(2);
        let lb = (0..64)
            .find(|&lb| {
                sys.layout().locate_images(lb).iter().any(|a| a.disk == 2)
                    && sys.layout().locate_data(lb).disk != 2
            })
            .expect("lb imaged on disk 2");
        sys.write(0, lb, &vec![0xEE; bs]).expect("degraded write");
        assert!(sys.parked_blocks(2) > 0, "unreachable image must be parked");
        let (got, _) = sys.read(0, lb, 1).expect("read around the partition");
        assert_eq!(got, vec![0xEE; bs]);
    }

    /// Crashing a node takes its disks transiently offline, partitions
    /// it, and re-homes its buffered image flushes.
    #[test]
    fn crash_node_combines_partition_and_transient_disks() {
        let (_engine, mut sys) = shape(4, 2, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        for lb in 0..4u64 {
            sys.write(2, lb, &vec![1u8; bs]).expect("seed");
        }
        sys.crash_node(2);
        assert!(sys.partitions().is_partitioned(2));
        for g in 0..sys.cluster.ndisks() {
            if sys.cluster.node_of_disk(g) == 2 {
                assert!(sys.offline_disks().contains(g), "disk {g} should be offline");
            }
        }
        // Remaining buffered images must not be owned by the dead node.
        let drained = sys.images.drain_all();
        assert!(drained.iter().all(|p| p.client != 2), "crashed node still owns flushes");
    }
}
