//! The cooperative-disk-driver I/O system: a single I/O space over the
//! whole cluster.
//!
//! [`IoSystem`] binds a [`Layout`] (where blocks live), a [`Cluster`]
//! (which resources they cross) and a [`DataPlane`] (the actual bytes).
//! Every request is executed **functionally** (bytes move now, so
//! correctness is checkable) and **temporally** (a [`Plan`] is returned for
//! the discrete-event engine, so performance is measurable).
//!
//! The write path dispatches on the layout's [`WriteScheme`]:
//!
//! * `None` — plain striping.
//! * `ForegroundMirror` — both copies written before the ack (RAID-10,
//!   chained declustering).
//! * `BackgroundMirror` — RAID-x OSM: the ack follows the data writes;
//!   images are coalesced per mirroring group into long sequential runs
//!   and flushed detached, *after* the foreground completes (write-behind),
//!   where they contend with subsequent traffic but never with their own
//!   request's latency.
//! * `Parity` — RAID-5: full stripes compute parity client-side and write
//!   `n` streams; partial stripes pay the four-operation
//!   read-modify-write (the small-write problem).

use cluster::{xor_into, Cluster, ClusterConfig, DataPlane, DiskError};
use raidx_core::fault::{plan_rebuild, RebuildSource};
use raidx_core::{Arch, BlockAddr, FaultSet, Layout, ReadSource, WriteScheme};
use sim_core::plan::{background, par, seq};
use sim_core::{Engine, Plan};

use crate::config::{CddConfig, ReadBalance};
use crate::locks::{LockConflict, LockGroupTable};
use crate::ops::OpBuilder;
use crate::runs::{merge_runs, Run};

/// Errors surfaced by the I/O system.
#[derive(Debug)]
pub enum IoError {
    /// Logical address beyond the layout's capacity.
    OutOfRange {
        /// Offending logical block.
        lb: u64,
        /// Layout capacity in blocks.
        capacity: u64,
    },
    /// Buffer length not a whole number of blocks / wrong size.
    BadLength {
        /// Required length unit (the block size).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// No surviving copy of a block.
    DataLoss {
        /// The unrecoverable logical block.
        lb: u64,
    },
    /// A peer holds an overlapping lock group.
    Lock(LockConflict),
    /// Functional-plane failure (invariant violation).
    Disk(DiskError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::OutOfRange { lb, capacity } => {
                write!(f, "block {lb} beyond capacity {capacity}")
            }
            IoError::BadLength { expected, got } => {
                write!(f, "buffer {got} bytes, expected {expected}")
            }
            IoError::DataLoss { lb } => write!(f, "block {lb} unrecoverable"),
            IoError::Lock(c) => write!(f, "lock conflict with node {}", c.holder),
            IoError::Disk(e) => write!(f, "data plane: {e}"),
        }
    }
}
impl std::error::Error for IoError {}

impl From<DiskError> for IoError {
    fn from(e: DiskError) -> Self {
        IoError::Disk(e)
    }
}

/// The single I/O space of one architecture over one cluster.
pub struct IoSystem {
    /// Cluster resource handles (public: workloads need node/NIC ids).
    pub cluster: Cluster,
    plane: DataPlane,
    layout: Box<dyn Layout>,
    cfg: CddConfig,
    faults: FaultSet,
    locks: LockGroupTable,
    high_water: u64,
    /// Write-behind buffer of the OSM image path: images accumulate per
    /// mirroring group (key → (writer, lb, image addr)) and a *completed*
    /// group flushes as one long sequential background write.
    // BTreeMap, not HashMap: `flush_images` drains this in iteration
    // order into the background plan, so the order must be deterministic
    // across engine instances (the determinism audit diffs two same-seed
    // runs event for event).
    pending_images: std::collections::BTreeMap<u64, Vec<(usize, u64, BlockAddr)>>,
    /// Bytes of read traffic dispatched per disk (drives the
    /// `LeastLoaded` balancing policy).
    read_load: Vec<u64>,
    /// Per-op lock-table occupancy samples `(op sequence number, records
    /// held while the op's grant was live)`, recorded only when
    /// [`IoSystem::enable_lock_metrics`] has been called. Op sequence is
    /// the timeline here — grants are scoped to the functional call, so
    /// a sim-time series would read as permanently empty.
    lock_samples: Option<Vec<(u64, usize)>>,
    /// Monotone operation counter (writes and reads), for lock samples.
    op_seq: u64,
}

impl IoSystem {
    /// Build the cluster in `engine` and assemble the I/O space for `arch`.
    pub fn new(
        engine: &mut Engine,
        cluster_cfg: ClusterConfig,
        arch: Arch,
        cfg: CddConfig,
    ) -> Self {
        let blocks_per_disk = cluster_cfg.blocks_per_disk();
        let layout = raidx_core::layout_for(
            arch,
            cluster_cfg.nodes,
            cluster_cfg.disks_per_node,
            blocks_per_disk,
        );
        let plane = DataPlane::new(
            cluster_cfg.total_disks(),
            cluster_cfg.block_size as usize,
            blocks_per_disk,
        );
        let total_disks = cluster_cfg.total_disks();
        let cluster = Cluster::build(cluster_cfg, engine);
        IoSystem {
            cluster,
            plane,
            layout,
            cfg,
            faults: FaultSet::none(),
            locks: LockGroupTable::new(),
            high_water: 0,
            pending_images: std::collections::BTreeMap::new(),
            read_load: vec![0; total_disks],
            lock_samples: None,
            op_seq: 0,
        }
    }

    /// The layout driving this system.
    pub fn layout(&self) -> &dyn Layout {
        self.layout.as_ref()
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.cluster.cfg.block_size
    }

    /// Client-visible capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.layout.capacity_blocks()
    }

    /// Currently failed disks.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Highest written logical block + 1.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Lock-group grants issued so far.
    pub fn lock_grants(&self) -> u64 {
        self.locks.grants()
    }

    /// Lock-group acquisitions rejected due to an overlapping grant.
    pub fn lock_conflicts(&self) -> u64 {
        self.locks.conflicts()
    }

    /// Lock-group records currently held (diagnostics; normally zero at
    /// rest since grants are scoped to each functional call).
    pub fn locks_held(&self) -> usize {
        self.locks.held().count()
    }

    /// Start recording per-op lock-table occupancy samples (see
    /// [`IoSystem::take_lock_samples`]); clears any previous samples.
    pub fn enable_lock_metrics(&mut self) {
        self.lock_samples = Some(Vec::new());
    }

    /// Take the recorded `(op sequence, lock records held)` samples,
    /// leaving recording enabled. The `trace_dump` exporter turns these
    /// into the CDD lock-table occupancy series.
    pub fn take_lock_samples(&mut self) -> Vec<(u64, usize)> {
        self.lock_samples.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Start recording the lock-group grant/release trace (consumed by
    /// the `raidx-verify` lock-order analyzer).
    pub fn enable_lock_trace(&mut self) {
        self.locks.enable_trace();
    }

    /// Take the recorded lock trace, leaving recording enabled.
    pub fn take_lock_trace(&mut self) -> Vec<crate::locks::LockEvent> {
        self.locks.take_trace()
    }

    /// Direct (test) access to the functional plane.
    pub fn plane_mut(&mut self) -> &mut DataPlane {
        &mut self.plane
    }

    fn ops(&self) -> OpBuilder<'_> {
        OpBuilder { cluster: &self.cluster, cfg: &self.cfg }
    }

    /// Record one `(op sequence, records held)` sample if lock metrics
    /// recording is on. Called while the current op's grant is live.
    fn sample_locks(&mut self) {
        let held = self.locks.held().count();
        let seq = self.op_seq;
        self.op_seq += 1;
        if let Some(samples) = self.lock_samples.as_mut() {
            samples.push((seq, held));
        }
    }

    fn validate_range(&self, lb0: u64, nblocks: u64) -> Result<(), IoError> {
        let cap = self.capacity_blocks();
        if lb0 + nblocks > cap {
            return Err(IoError::OutOfRange { lb: lb0 + nblocks - 1, capacity: cap });
        }
        Ok(())
    }

    /// Write `data` (a whole number of blocks) at logical block `lb0` on
    /// behalf of node `client`. Returns the timing plan; the bytes are
    /// already durable on the functional plane when this returns.
    pub fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        let bs = self.block_size() as usize;
        if data.is_empty() || !data.len().is_multiple_of(bs) {
            return Err(IoError::BadLength { expected: bs.max(1), got: data.len() });
        }
        let nblocks = (data.len() / bs) as u64;
        self.validate_range(lb0, nblocks)?;

        // Consistency module: atomically acquire the lock group, held for
        // the duration of the (logically instantaneous) functional update.
        let lock = self.locks.acquire(client, lb0, nblocks).map_err(IoError::Lock)?;
        self.sample_locks();
        let result = self.write_locked(client, lb0, nblocks, data);
        self.locks.release(lock);
        let body = result?;
        self.high_water = self.high_water.max(lb0 + nblocks);

        let ops = self.ops();
        let mut chain = vec![ops.driver(client)];
        if self.cfg.lock_broadcast {
            chain.push(ops.lock_round(client));
        }
        chain.push(body);
        Ok(seq(chain))
    }

    fn write_locked(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        match self.layout.write_scheme() {
            WriteScheme::None => self.write_plain(client, lb0, nblocks, data),
            WriteScheme::ForegroundMirror => self.write_mirrored(client, lb0, nblocks, data, false),
            WriteScheme::BackgroundMirror => {
                let bg = self.cfg.background_mirroring;
                self.write_mirrored(client, lb0, nblocks, data, bg)
            }
            WriteScheme::Parity => self.write_parity(client, lb0, nblocks, data),
        }
    }

    fn slice<'d>(&self, data: &'d [u8], lb0: u64, lb: u64) -> &'d [u8] {
        let bs = self.block_size() as usize;
        let off = ((lb - lb0) as usize) * bs;
        &data[off..off + bs]
    }

    fn write_plain(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let mut placements = Vec::with_capacity(nblocks as usize);
        for lb in lb0..lb0 + nblocks {
            let a = self.layout.locate_data(lb);
            if self.faults.contains(a.disk) {
                return Err(IoError::DataLoss { lb });
            }
            placements.push((lb, a));
        }
        for &(lb, a) in &placements {
            self.plane.write(a.disk, a.block, self.slice(data, lb0, lb))?;
        }
        let ops = self.ops();
        let plans = runs_to_writes(&ops, client, &merge_runs(placements), true);
        Ok(par(plans))
    }

    fn write_mirrored(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
        deferred_images: bool,
    ) -> Result<Plan, IoError> {
        let mut fg = Vec::new(); // foreground placements
        let mut bg = Vec::new(); // deferred image placements
        for lb in lb0..lb0 + nblocks {
            let d = self.layout.locate_data(lb);
            let images = self.layout.locate_images(lb);
            let d_ok = !self.faults.contains(d.disk);
            let healthy_images: Vec<BlockAddr> =
                images.into_iter().filter(|a| !self.faults.contains(a.disk)).collect();
            if !d_ok && healthy_images.is_empty() {
                return Err(IoError::DataLoss { lb });
            }
            if d_ok {
                fg.push((lb, d));
            }
            for img in healthy_images {
                // With the primary gone the image is the only durable copy,
                // so it must be written before the ack.
                if deferred_images && d_ok {
                    bg.push((lb, img));
                } else {
                    fg.push((lb, img));
                }
            }
        }
        for &(lb, a) in fg.iter().chain(bg.iter()) {
            self.plane.write(a.disk, a.block, self.slice(data, lb0, lb))?;
        }
        // Write-behind with group clustering: buffer each deferred image
        // under its mirroring group; a group that fills flushes as one
        // long sequential write (the OSM mechanism that removes per-write
        // mirroring cost). Partial groups stay buffered until they fill
        // or `flush_images` is called.
        let mut ready: Vec<(usize, u64, BlockAddr)> = Vec::new();
        for (lb, img) in bg {
            match self.layout.image_group_key(lb) {
                Some((key, group_len)) => {
                    let entry = self.pending_images.entry(key).or_default();
                    // Overwrites of a still-buffered block replace in place.
                    if let Some(slot) = entry.iter_mut().find(|(_, l, _)| *l == lb) {
                        *slot = (client, lb, img);
                    } else {
                        entry.push((client, lb, img));
                    }
                    if entry.len() >= group_len {
                        let full = self.pending_images.remove(&key).expect("entry exists");
                        ready.extend(full);
                    }
                }
                None => ready.push((client, lb, img)),
            }
        }
        let ops = self.ops();
        let fg_plans = runs_to_writes(&ops, client, &merge_runs(fg), true);
        let mut chain = vec![par(fg_plans)];
        if !ready.is_empty() {
            let bg_plans = image_flush_plans(&ops, ready);
            chain.push(background(par(bg_plans)));
        }
        Ok(seq(chain))
    }

    /// Flush every still-buffered image group (partial groups included) as
    /// background writes. Call at sync points; the returned plan performs
    /// the deferred mirror traffic.
    pub fn flush_images(&mut self) -> Plan {
        let mut all: Vec<(usize, u64, BlockAddr)> = Vec::new();
        for (_, v) in std::mem::take(&mut self.pending_images) {
            all.extend(v);
        }
        if all.is_empty() {
            return Plan::Noop;
        }
        let ops = self.ops();
        par(image_flush_plans(&ops, all))
    }

    /// Number of image blocks currently buffered for deferred flushing.
    pub fn pending_image_blocks(&self) -> usize {
        self.pending_images.values().map(Vec::len).sum()
    }

    fn write_parity(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let bs = self.block_size() as usize;
        let width = self.layout.stripe_width() as u64;
        // A block is unstorable only if both its data disk and its
        // stripe's parity disk are gone.
        for lb in lb0..lb0 + nblocks {
            let d = self.layout.locate_data(lb);
            let p = self.layout.locate_parity(lb).expect("parity layout");
            if self.faults.contains(d.disk) && self.faults.contains(p.disk) {
                return Err(IoError::DataLoss { lb });
            }
        }

        let mut full_data = Vec::new(); // data placements of full stripes
        let mut parity_writes = Vec::new(); // (stripe, parity addr)
        let mut rmw_plans = Vec::new();
        // Degraded reconstruct-writes: (lost block, surviving sibling
        // addrs to read, parity addr to write).
        let mut reconstruct_writes: Vec<(u64, Vec<BlockAddr>, BlockAddr)> = Vec::new();
        // Degraded data-only writes (parity disk dead).
        let mut bare_data = Vec::new();
        let mut xor_bytes = 0u64;

        let s_first = lb0 / width;
        let s_last = (lb0 + nblocks - 1) / width;
        for s in s_first..=s_last {
            let members = self.layout.stripe_blocks(s);
            let covered = members.iter().all(|&m| (lb0..lb0 + nblocks).contains(&m));
            if covered && members.len() == width as usize {
                // Full-stripe write: parity from the new data alone. A
                // dead data disk's block is represented by parity only;
                // a dead parity disk simply goes unmaintained.
                let mut parity = vec![0u8; bs];
                for &m in &members {
                    let slice = self.slice(data, lb0, m);
                    xor_into(&mut parity, slice);
                    let a = self.layout.locate_data(m);
                    if !self.faults.contains(a.disk) {
                        self.plane.write(a.disk, a.block, slice)?;
                        full_data.push((m, a));
                    }
                }
                let p = self.layout.locate_parity(members[0]).expect("parity");
                if !self.faults.contains(p.disk) {
                    self.plane.write(p.disk, p.block, &parity)?;
                    parity_writes.push((s, p));
                }
                xor_bytes += width * bs as u64;
            } else {
                // Partial stripe: per touched block.
                for &m in &members {
                    if !(lb0..lb0 + nblocks).contains(&m) {
                        continue;
                    }
                    let a = self.layout.locate_data(m);
                    let p = self.layout.locate_parity(m).expect("parity");
                    let d_ok = !self.faults.contains(a.disk);
                    let p_ok = !self.faults.contains(p.disk);
                    let newd = self.slice(data, lb0, m).to_vec();
                    match (d_ok, p_ok) {
                        (true, true) => {
                            // Healthy read-modify-write.
                            let old = self.plane.read_owned(a.disk, a.block)?;
                            let mut new_parity = self.plane.read_owned(p.disk, p.block)?;
                            xor_into(&mut new_parity, &old);
                            xor_into(&mut new_parity, &newd);
                            self.plane.write(a.disk, a.block, &newd)?;
                            self.plane.write(p.disk, p.block, &new_parity)?;
                            rmw_plans.push((m, a, p));
                        }
                        (true, false) => {
                            // Parity disk dead: data write only.
                            self.plane.write(a.disk, a.block, &newd)?;
                            bare_data.push((m, a));
                        }
                        (false, true) => {
                            // Reconstruct-write: the new block exists only
                            // through parity = new XOR surviving siblings.
                            let mut parity = newd;
                            let mut sibs = Vec::new();
                            for sib in self.layout.stripe_blocks(s) {
                                if sib == m {
                                    continue;
                                }
                                let sa = self.layout.locate_data(sib);
                                let bytes = self.plane.read_owned(sa.disk, sa.block)?;
                                xor_into(&mut parity, &bytes);
                                sibs.push(sa);
                            }
                            self.plane.write(p.disk, p.block, &parity)?;
                            reconstruct_writes.push((m, sibs, p));
                        }
                        (false, false) => unreachable!("checked above"),
                    }
                }
            }
        }

        let ops_owned = self.ops();
        let mut branches = Vec::new();
        if !full_data.is_empty() {
            let data_plans = runs_to_writes(&ops_owned, client, &merge_runs(full_data), true);
            let parity_plans: Vec<Plan> = parity_writes
                .iter()
                .map(|&(_, p)| ops_owned.write_run(client, p.disk, p.block, 1, true))
                .collect();
            branches.push(seq(vec![
                ops_owned.xor(client, xor_bytes),
                par(data_plans.into_iter().chain(parity_plans).collect()),
            ]));
        }
        for (_, a, p) in &rmw_plans {
            // The four-op small-write cycle: two reads, XOR, two writes.
            branches.push(seq(vec![
                par(vec![
                    ops_owned.read_run(client, a.disk, a.block, 1),
                    ops_owned.read_run(client, p.disk, p.block, 1),
                ]),
                ops_owned.xor(client, 3 * bs as u64),
                par(vec![
                    ops_owned.write_run(client, a.disk, a.block, 1, true),
                    ops_owned.write_run(client, p.disk, p.block, 1, true),
                ]),
            ]));
        }
        for run in merge_runs(bare_data) {
            branches.push(ops_owned.write_run(client, run.disk, run.start, run.len(), true));
        }
        for (_, sibs, p) in &reconstruct_writes {
            // Degraded write: read every surviving sibling, XOR with the
            // new data, write the parity block.
            let reads: Vec<Plan> =
                sibs.iter().map(|a| ops_owned.read_run(client, a.disk, a.block, 1)).collect();
            branches.push(seq(vec![
                par(reads),
                ops_owned.xor(client, width * bs as u64),
                ops_owned.write_run(client, p.disk, p.block, 1, true),
            ]));
        }
        Ok(par(branches))
    }

    /// The image addresses of a primary run, if they form one healthy
    /// contiguous run on a single disk (the condition under which a whole
    /// run can be redirected to the mirror copy).
    fn image_run_of(&self, run: &Run) -> Option<(usize, u64)> {
        let first = self.layout.locate_images(run.lbs[0]);
        let first = first.first()?;
        if self.faults.contains(first.disk) {
            return None;
        }
        for (i, &lb) in run.lbs.iter().enumerate() {
            let imgs = self.layout.locate_images(lb);
            let img = imgs.first()?;
            if img.disk != first.disk || img.block != first.block + i as u64 {
                return None;
            }
        }
        Some((first.disk, first.block))
    }

    /// Decide whether a healthy-primary run should be served by its
    /// mirror copy, per the configured balancing policy. Returns the
    /// redirected (disk, start) when it should.
    fn balance_run(&mut self, run: &Run) -> Option<(usize, u64)> {
        let payload = run.len() * self.block_size();
        let choice = match self.cfg.read_balance {
            ReadBalance::PrimaryOnly => None,
            ReadBalance::LayoutPreference => {
                if matches!(self.layout.read_source(run.lbs[0], &self.faults), ReadSource::Image(_))
                {
                    self.image_run_of(run)
                } else {
                    None
                }
            }
            ReadBalance::LeastLoaded => match self.image_run_of(run) {
                Some((img_disk, start)) if self.read_load[img_disk] < self.read_load[run.disk] => {
                    Some((img_disk, start))
                }
                _ => None,
            },
        };
        match choice {
            Some((disk, _)) => self.read_load[disk] += payload,
            None => self.read_load[run.disk] += payload,
        }
        choice
    }

    /// Read `nblocks` logical blocks starting at `lb0` for node `client`.
    /// Returns the bytes (already materialized from the functional plane)
    /// and the timing plan.
    pub fn read(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
    ) -> Result<(Vec<u8>, Plan), IoError> {
        self.validate_range(lb0, nblocks)?;
        let bs = self.block_size() as usize;
        let mut out = vec![0u8; nblocks as usize * bs];

        // Partition: blocks with a live primary are balanced at run
        // granularity; the rest fall back to the degraded paths.
        let mut healthy = Vec::new();
        let mut forced_images = Vec::new();
        let mut reconstructs = Vec::new();
        for lb in lb0..lb0 + nblocks {
            let d = self.layout.locate_data(lb);
            if !self.faults.contains(d.disk) {
                healthy.push((lb, d));
                continue;
            }
            match self.layout.read_source(lb, &self.faults) {
                ReadSource::Primary(a) | ReadSource::Image(a) => forced_images.push((lb, a)),
                ReadSource::Reconstruct { siblings, parity } => {
                    reconstructs.push((lb, siblings, parity))
                }
                ReadSource::Lost => return Err(IoError::DataLoss { lb }),
            }
        }

        // Run-level replica selection for the healthy primaries.
        let mut physical: Vec<(usize, u64, u64, Vec<u64>)> = Vec::new(); // disk, start, len, lbs
        for run in merge_runs(healthy) {
            match self.balance_run(&run) {
                Some((disk, start)) => physical.push((disk, start, run.len(), run.lbs)),
                None => physical.push((run.disk, run.start, run.len(), run.lbs)),
            }
        }

        // Functional reads.
        for (disk, start, _, lbs) in &physical {
            for (i, &lb) in lbs.iter().enumerate() {
                let off = (lb - lb0) as usize * bs;
                self.plane.read(*disk, start + i as u64, &mut out[off..off + bs])?;
            }
        }
        for &(lb, a) in &forced_images {
            let off = (lb - lb0) as usize * bs;
            self.plane.read(a.disk, a.block, &mut out[off..off + bs])?;
        }
        for (lb, siblings, parity) in &reconstructs {
            let off = (*lb - lb0) as usize * bs;
            let mut acc = self.plane.read_owned(parity.disk, parity.block)?;
            for (_, a) in siblings {
                let sib = self.plane.read_owned(a.disk, a.block)?;
                xor_into(&mut acc, &sib);
            }
            out[off..off + bs].copy_from_slice(&acc);
        }

        // Timing plan.
        let ops = self.ops();
        let mut branches: Vec<Plan> = Vec::new();
        for (disk, start, len, _) in &physical {
            branches.push(ops.read_run(client, *disk, *start, *len));
        }
        for run in merge_runs(forced_images) {
            branches.push(ops.read_run(client, run.disk, run.start, run.len()));
        }
        for (_, siblings, parity) in &reconstructs {
            let mut reads: Vec<Plan> =
                siblings.iter().map(|(_, a)| ops.read_run(client, a.disk, a.block, 1)).collect();
            reads.push(ops.read_run(client, parity.disk, parity.block, 1));
            let n_in = reads.len() as u64 + 1;
            branches.push(seq(vec![par(reads), ops.xor(client, n_in * bs as u64)]));
        }
        let plan = seq(vec![ops.driver(client), par(branches)]);
        Ok((out, plan))
    }

    /// Fail a disk: its contents are lost on the functional plane and all
    /// planning routes around it.
    pub fn fail_disk(&mut self, disk: usize) {
        self.faults.insert(disk);
        self.plane.fail(disk);
    }

    /// Scrub: audit that every written block's redundancy is consistent
    /// on the functional plane — mirror images byte-identical to their
    /// data, parity blocks equal to the XOR of their stripe. Returns the
    /// number of redundancy relations audited; any inconsistency is an
    /// error naming the offending block. (The real CDD would run this in
    /// idle time; here it is the test suite's strongest invariant check.)
    pub fn scrub(&mut self) -> Result<u64, IoError> {
        let bs = self.block_size() as usize;
        let mut audited = 0u64;
        let width = self.layout.stripe_width() as u64;
        for lb in 0..self.high_water {
            let d = self.layout.locate_data(lb);
            if self.faults.contains(d.disk) {
                continue;
            }
            let data = self.plane.read_owned(d.disk, d.block)?;
            // Mirror images must match exactly.
            for img in self.layout.locate_images(lb) {
                if self.faults.contains(img.disk) {
                    continue;
                }
                let copy = self.plane.read_owned(img.disk, img.block)?;
                if copy != data {
                    return Err(IoError::DataLoss { lb });
                }
                audited += 1;
            }
            // Parity must equal the XOR of the whole stripe (checked once
            // per stripe, at its first member).
            if let Some(p) = self.layout.locate_parity(lb) {
                let (s, pos) = self.layout.stripe_of(lb);
                if pos == 0 && !self.faults.contains(p.disk) {
                    let mut acc = vec![0u8; bs];
                    let mut complete = true;
                    for member in self.layout.stripe_blocks(s) {
                        let a = self.layout.locate_data(member);
                        if self.faults.contains(a.disk) {
                            complete = false;
                            break;
                        }
                        let bytes = self.plane.read_owned(a.disk, a.block)?;
                        xor_into(&mut acc, &bytes);
                    }
                    if complete {
                        let parity = self.plane.read_owned(p.disk, p.block)?;
                        if parity != acc {
                            return Err(IoError::DataLoss { lb: s * width });
                        }
                        audited += 1;
                    }
                }
            }
        }
        Ok(audited)
    }

    /// Replace `disk` with a blank spare and restore every block it held
    /// (primaries, images and parity), driven from node `client`.
    /// Returns the timing plan and the number of blocks restored.
    pub fn rebuild_disk(&mut self, client: usize, disk: usize) -> Result<(Plan, usize), IoError> {
        assert!(self.faults.contains(disk), "rebuilding a healthy disk");
        let mut remaining = self.faults.clone();
        remaining.remove(disk);
        let steps = plan_rebuild(self.layout.as_ref(), disk, &remaining, self.high_water)
            .map_err(|lost| IoError::DataLoss { lb: lost[0] })?;
        self.plane.replace(disk);

        let bs = self.block_size() as usize;
        let mut step_plans = Vec::with_capacity(steps.len());
        // Split borrows: collect functional actions first, then build plans.
        for step in &steps {
            match &step.source {
                RebuildSource::Copy(lb) => {
                    let src = match self.layout.read_source(*lb, &self.faults) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        _ => return Err(IoError::DataLoss { lb: *lb }),
                    };
                    let bytes = self.plane.read_owned(src.disk, src.block)?;
                    self.plane.write(step.target.disk, step.target.block, &bytes)?;
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut acc = vec![0u8; bs];
                    for (_, a) in siblings {
                        let b = self.plane.read_owned(a.disk, a.block)?;
                        xor_into(&mut acc, &b);
                    }
                    if let Some(p) = parity {
                        let b = self.plane.read_owned(p.disk, p.block)?;
                        xor_into(&mut acc, &b);
                    }
                    self.plane.write(step.target.disk, step.target.block, &acc)?;
                }
            }
        }
        let ops = self.ops();
        for step in &steps {
            let write = ops.write_run(client, step.target.disk, step.target.block, 1, false);
            let plan = match &step.source {
                RebuildSource::Copy(lb) => {
                    let src = match self.layout.read_source(*lb, &self.faults) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        _ => unreachable!("checked above"),
                    };
                    seq(vec![ops.read_run(client, src.disk, src.block, 1), write])
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut reads: Vec<Plan> = siblings
                        .iter()
                        .map(|(_, a)| ops.read_run(client, a.disk, a.block, 1))
                        .collect();
                    if let Some(p) = parity {
                        reads.push(ops.read_run(client, p.disk, p.block, 1));
                    }
                    let n = reads.len() as u64 + 1;
                    seq(vec![par(reads), ops.xor(client, n * bs as u64), write])
                }
            };
            step_plans.push(plan);
        }
        self.faults.remove(disk);

        // Pace the rebuild in batches (a real rebuilder bounds outstanding
        // I/O rather than flooding every queue at once).
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        Ok((seq(batched), steps.len()))
    }
}

fn runs_to_writes(ops: &OpBuilder<'_>, client: usize, runs: &[Run], ack: bool) -> Vec<Plan> {
    runs.iter().map(|r| ops.write_run(client, r.disk, r.start, r.len(), ack)).collect()
}

/// Build the background write plans for flushed image blocks, merging
/// physically consecutive blocks into single long writes and shipping each
/// run from the node that buffered its first member.
fn image_flush_plans(ops: &OpBuilder<'_>, mut items: Vec<(usize, u64, BlockAddr)>) -> Vec<Plan> {
    items.sort_unstable_by_key(|&(_, _, a)| (a.disk, a.block));
    let mut plans = Vec::new();
    let mut i = 0;
    while i < items.len() {
        let (client, _, start) = items[i];
        let mut len = 1u64;
        while i + len as usize != items.len() {
            let (_, _, next) = items[i + len as usize];
            if next.disk == start.disk && next.block == start.block + len {
                len += 1;
            } else {
                break;
            }
        }
        plans.push(ops.write_run(client, start.disk, start.block, len, false));
        i += len as usize;
    }
    plans
}
