//! Slot→physical placement translation with one in-flight migration.
//!
//! All OSM placement arithmetic ([`crate::scheme`], [`raidx_core::Layout`])
//! is written against a fixed array of logical *slots*. The [`Placer`]
//! binds those slots to physical disks through an epoch-versioned
//! [`ClusterMap`] and tracks the (at most one) migration currently
//! draining after a transition:
//!
//! * **Reads** of a block still pending migration resolve to the *old*
//!   physical home — the epoch the block was written under — which is
//!   what makes stale-epoch reads legal while a rebalance is in flight.
//! * **Writes** always land on the *new* home and clear the block's
//!   pending entry: a freshly written block never needs migrating.
//!
//! On a never-reconfigured array the map is the identity and every
//! translation is a no-op, so epoch-0 runs stay byte-identical to the
//! pre-epoch code paths.

use std::collections::BTreeSet;

use cluster::ClusterMap;
use raidx_core::{BlockAddr, FaultSet};

/// The one migration allowed in flight after an epoch transition.
#[derive(Debug, Clone)]
pub struct Migration {
    /// The slot whose binding moved.
    pub slot: usize,
    /// Physical disk the slot vacated (now Retired in the roster).
    pub old_phys: usize,
    /// Physical disk the slot now binds to.
    pub new_phys: usize,
    /// True if the old disk's media is unreadable (it failed or was
    /// offline at transition time), so pending blocks must reconstruct
    /// from redundancy instead of copying.
    pub old_dead: bool,
    /// Physical block indices on the old disk still awaiting migration.
    pub pending: BTreeSet<u64>,
}

/// Epoch-aware placement view handed to every layer that used to assume
/// static membership.
#[derive(Debug)]
pub struct Placer {
    map: ClusterMap,
    migration: Option<Migration>,
}

impl Placer {
    /// The boot-time placer: identity map over `nslots`, no migration.
    pub fn identity(nslots: usize) -> Self {
        Placer { map: ClusterMap::identity(nslots), migration: None }
    }

    /// The underlying epoch-versioned map.
    pub fn map(&self) -> &ClusterMap {
        &self.map
    }

    /// Current placement epoch.
    pub fn epoch(&self) -> u64 {
        self.map.epoch()
    }

    /// The in-flight migration, if one is still draining.
    pub fn migration(&self) -> Option<&Migration> {
        self.migration.as_ref()
    }

    /// Blocks still awaiting migration (0 when none is in flight).
    pub fn pending_blocks(&self) -> usize {
        self.migration.as_ref().map_or(0, |m| m.pending.len())
    }

    /// Physical disk currently serving `slot`.
    #[inline]
    pub fn phys(&self, slot: usize) -> usize {
        if self.map.is_identity() {
            return slot;
        }
        self.map.phys(slot)
    }

    /// Register a fresh physical disk as a spare (appends an epoch).
    pub fn add_spare(&mut self) -> usize {
        self.map.add_spare()
    }

    /// Commit a transition: bind `spare` to `slot`, retire the old disk
    /// and start draining `pending`. Returns the new epoch. Panics if a
    /// migration is already in flight — the CDD serialises transitions
    /// through the replicated lock-group table, one at a time.
    pub fn begin_promote(
        &mut self,
        slot: usize,
        spare: usize,
        old_dead: bool,
        pending: BTreeSet<u64>,
    ) -> u64 {
        assert!(self.migration.is_none(), "a previous migration is still draining");
        let old_phys = self.map.phys(slot);
        let epoch = self.map.promote(slot, spare);
        let new_phys = self.map.phys(slot);
        if !pending.is_empty() {
            self.migration = Some(Migration { slot, old_phys, new_phys, old_dead, pending });
        }
        epoch
    }

    /// Where a *read* of `a` (slot space) is served right now: the old
    /// home while the block is pending migration, the current home
    /// otherwise.
    #[inline]
    pub fn read_home(&self, a: BlockAddr) -> BlockAddr {
        match &self.migration {
            Some(m) if m.slot == a.disk && m.pending.contains(&a.block) => {
                BlockAddr::new(m.old_phys, a.block)
            }
            _ => BlockAddr::new(self.phys(a.disk), a.block),
        }
    }

    /// Where a *write* of `a` (slot space) lands: always the current
    /// home. Clears the block's pending entry — new data supersedes the
    /// copy that migration would have moved.
    #[inline]
    pub fn write_home(&mut self, a: BlockAddr) -> BlockAddr {
        if let Some(m) = &mut self.migration {
            if m.slot == a.disk {
                m.pending.remove(&a.block);
            }
        }
        BlockAddr::new(self.phys(a.disk), a.block)
    }

    /// Drop one block of `slot` from the pending set (a rebalance step
    /// finished or superseded it). Returns true if it was present; a
    /// no-op when the in-flight migration is for a different slot.
    pub fn clear_pending(&mut self, slot: usize, block: u64) -> bool {
        self.migration.as_mut().is_some_and(|m| m.slot == slot && m.pending.remove(&block))
    }

    /// Close out the migration if its pending set has drained. Returns
    /// true if no migration remains in flight afterwards.
    pub fn finish_if_drained(&mut self) -> bool {
        if self.migration.as_ref().is_some_and(|m| m.pending.is_empty()) {
            self.migration = None;
        }
        self.migration.is_none()
    }

    /// Translate a physical fault set into the slot view *writes* use:
    /// slot `s` is unavailable iff its current home is.
    pub fn slot_write_faults(&self, phys: &FaultSet) -> FaultSet {
        if self.map.is_identity() {
            return phys.clone();
        }
        (0..self.map.nslots()).filter(|&s| phys.contains(self.map.phys(s))).collect()
    }

    /// Translate a physical fault set into the slot view *reads* use.
    /// Like [`Placer::slot_write_faults`], but additionally marks the
    /// migrating slot when its old home is unreadable and blocks are
    /// still pending there: a conservative over-approximation that
    /// routes such reads through image copies or parity reconstruction,
    /// which stay byte-correct regardless of migration progress.
    pub fn slot_read_faults(&self, phys: &FaultSet) -> FaultSet {
        let mut slots = self.slot_write_faults(phys);
        if let Some(m) = &self.migration {
            if !m.pending.is_empty() && (m.old_dead || phys.contains(m.old_phys)) {
                slots.insert(m.slot);
            }
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pend(blocks: &[u64]) -> BTreeSet<u64> {
        blocks.iter().copied().collect()
    }

    #[test]
    fn identity_placer_is_transparent() {
        let p = Placer::identity(4);
        assert_eq!(p.epoch(), 0);
        assert_eq!(p.phys(3), 3);
        assert_eq!(p.read_home(BlockAddr::new(2, 9)), BlockAddr::new(2, 9));
        let f = FaultSet::of(&[1]);
        assert_eq!(p.slot_write_faults(&f), f);
        assert_eq!(p.slot_read_faults(&f), f);
    }

    #[test]
    fn pending_blocks_read_old_home_until_written() {
        let mut p = Placer::identity(4);
        let spare = p.add_spare();
        p.begin_promote(1, spare, false, pend(&[5, 7]));
        // Pending block: read from the vacated disk, write to the new one.
        assert_eq!(p.read_home(BlockAddr::new(1, 5)), BlockAddr::new(1, 5));
        assert_eq!(p.write_home(BlockAddr::new(1, 5)), BlockAddr::new(4, 5));
        // The write cleared the pending entry: reads now follow the map.
        assert_eq!(p.read_home(BlockAddr::new(1, 5)), BlockAddr::new(4, 5));
        // Non-pending blocks of the slot were always at the new home.
        assert_eq!(p.read_home(BlockAddr::new(1, 0)), BlockAddr::new(4, 0));
        // Other slots are untouched.
        assert_eq!(p.read_home(BlockAddr::new(2, 5)), BlockAddr::new(2, 5));
        assert!(p.clear_pending(1, 7));
        assert!(p.finish_if_drained());
        assert!(p.migration().is_none());
    }

    #[test]
    fn read_faults_conservatively_cover_a_dead_old_home() {
        let mut p = Placer::identity(3);
        let spare = p.add_spare();
        p.begin_promote(0, spare, true, pend(&[1]));
        let none = FaultSet::none();
        // Writes see the healthy new home; reads treat the slot degraded.
        assert!(p.slot_write_faults(&none).is_empty());
        assert!(p.slot_read_faults(&none).contains(0));
        // Once the pending set drains the slot reads clean again.
        p.clear_pending(0, 1);
        assert!(p.finish_if_drained());
        assert!(p.slot_read_faults(&none).is_empty());
    }

    #[test]
    #[should_panic(expected = "still draining")]
    fn only_one_migration_in_flight() {
        let mut p = Placer::identity(2);
        let a = p.add_spare();
        let b = p.add_spare();
        p.begin_promote(0, a, false, pend(&[1]));
        p.begin_promote(1, b, false, pend(&[2]));
    }

    #[test]
    fn fault_translation_follows_the_map() {
        let mut p = Placer::identity(3);
        let spare = p.add_spare();
        p.begin_promote(2, spare, false, BTreeSet::new());
        // Old disk 2 failing no longer degrades slot 2; disk 3 failing does.
        assert!(!p.slot_write_faults(&FaultSet::of(&[2])).contains(2));
        assert!(p.slot_write_faults(&FaultSet::of(&[3])).contains(2));
        // Spares/retired disks never appear in the slot view.
        assert_eq!(p.slot_write_faults(&FaultSet::of(&[2])).len(), 0);
    }
}
