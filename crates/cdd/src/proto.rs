//! `raidx-model` protocol scenarios — small multi-client CDD programs the
//! schedule explorer can exhaustively interleave.
//!
//! A [`Scenario`] gives each client a script of group operations
//! ([`ProtoOp`]); compilation breaks every operation into *micro-steps*
//! (acquire the lock group, write/read one block, release) so the
//! explorer can preempt between any two. [`CddModel`] implements
//! [`sim_core::explore::Model`] over the shared [`ProtoState`]: the real
//! [`LockGroupTable`], a flat block store standing in for the Single I/O
//! Space, and a recorded operation history for post-hoc linearizability
//! checking.
//!
//! **Invariants checked while exploring** (the paper's CDD consistency
//! contract): no two live grants of different owners overlap (grants are
//! exclusive write permissions), every store write is covered by a grant
//! held by the writer (when `assert_coverage` is on), and every schedule
//! terminates (a client blocked forever is a lost wakeup / deadlock,
//! which the explorer reports).
//!
//! **Seeded defects.** [`Defect`] plants one of five protocol bugs so the
//! checker's tests can prove each detection path actually fires; see the
//! variant docs for which signal catches which bug.

use std::collections::BTreeMap;

use crate::compile::{compile_op, CompiledOp, MicroStep};
use crate::locks::{LockGroupTable, LockHandle};
use sim_core::explore::{Footprint, Model, ThreadId};

/// Abstract footprint cell of the shared lock-group table.
pub const TABLE_CELL: u64 = 0;

/// Abstract footprint cell of logical block `lb` (offset past the table).
pub fn block_cell(lb: u64) -> u64 {
    1 + lb
}

// The scenario vocabulary (scripted ops, seeded defects, history
// records) lives in `crate::scenarios`; re-exported here so the
// `cdd::proto::*` paths the verify passes use keep working.
pub use crate::scenarios::{
    scenario_cache, scenario_contended, scenario_epoch, scenario_reader, scenario_three, Defect,
    HistOp, OpRecord, ProtoOp, Scenario,
};

/// Per-client execution state.
#[derive(Debug, Clone)]
pub struct ClientState {
    op_idx: usize,
    step_idx: usize,
    handles: Vec<LockHandle>,
    waiting: bool,
    op_inv: Option<u64>,
    read_vals: Vec<u64>,
}

/// The shared state the explorer clones at every branch point.
#[derive(Debug, Clone)]
pub struct ProtoState {
    /// The real CDD lock-group table.
    pub table: LockGroupTable,
    /// The Single-I/O-Space stand-in: one value per logical block.
    pub store: Vec<u64>,
    /// Completed operations, for the linearizability checker.
    pub history: Vec<OpRecord>,
    /// Current cluster-map epoch (0 until a [`ProtoOp::Reconfig`] bumps it).
    pub epoch: u64,
    /// New-home cell of the migrating block ([`Scenario::mig`]).
    pub shadow: u64,
    /// True while the migrating block still awaits its copy: reads of it
    /// are served from the old home, a new-epoch write clears the flag.
    pub pending: bool,
    /// Global step counter (real-time order for inv/resp stamps).
    pub steps: u64,
    /// Per-client block caches (block → cached value) backing the
    /// lock-free [`ProtoOp::CachedReadGroup`] micro-steps; writers'
    /// coherent `WriteInv` micro-steps purge entries from every cache
    /// atomically with the store update.
    pub caches: Vec<BTreeMap<u64, u64>>,
    /// Per-client execution state.
    pub clients: Vec<ClientState>,
}

/// A compiled [`Scenario`] implementing [`Model`] for the explorer.
#[derive(Debug, Clone)]
pub struct CddModel {
    scenario: Scenario,
    programs: Vec<Vec<CompiledOp>>,
}

impl CddModel {
    /// Compile a scenario's scripts into explorable micro-step programs.
    pub fn new(scenario: Scenario) -> Self {
        let programs = scenario
            .scripts
            .iter()
            .enumerate()
            .map(|(client, script)| {
                script.iter().map(|op| compile_op(op, &scenario, client)).collect()
            })
            .collect();
        CddModel { scenario, programs }
    }

    /// The compiled scenario's name.
    pub fn name(&self) -> &'static str {
        self.scenario.name
    }

    fn current(&self, s: &ProtoState, t: ThreadId) -> MicroStep {
        let c = &s.clients[t];
        self.programs[t][c.op_idx].steps[c.step_idx]
    }
}

impl Model for CddModel {
    type State = ProtoState;

    fn init(&self) -> ProtoState {
        ProtoState {
            table: LockGroupTable::new(),
            store: vec![0; self.scenario.blocks as usize],
            history: Vec::new(),
            epoch: 0,
            shadow: 0,
            pending: false,
            steps: 0,
            caches: self.programs.iter().map(|_| BTreeMap::new()).collect(),
            clients: self
                .programs
                .iter()
                .map(|_| ClientState {
                    op_idx: 0,
                    step_idx: 0,
                    handles: Vec::new(),
                    waiting: false,
                    op_inv: None,
                    read_vals: Vec::new(),
                })
                .collect(),
        }
    }

    fn threads(&self) -> usize {
        self.programs.len()
    }

    fn done(&self, s: &ProtoState, t: ThreadId) -> bool {
        s.clients[t].op_idx >= self.programs[t].len()
    }

    fn enabled(&self, s: &ProtoState, t: ThreadId) -> bool {
        !self.done(s, t) && !s.clients[t].waiting
    }

    fn footprint(&self, s: &ProtoState, t: ThreadId) -> Footprint {
        match self.current(s, t) {
            MicroStep::Acquire { .. } | MicroStep::Release => Footprint::cells(vec![TABLE_CELL]),
            MicroStep::Write { lb, .. } | MicroStep::Read { lb } => {
                Footprint::cells(vec![block_cell(lb)])
            }
            // Cached reads and coherent writes race through the block's
            // coherence state: both touch the block cell so the explorer
            // interleaves them against each other and plain accesses.
            MicroStep::CacheRead { lb } | MicroStep::WriteInv { lb, .. } => {
                Footprint::cells(vec![block_cell(lb)])
            }
            // Both touch the migrating block's routing state (epoch /
            // pending / shadow), which its reads and writes consult.
            MicroStep::Bump | MicroStep::Migrate { .. } => {
                Footprint::cells(vec![block_cell(self.scenario.mig.unwrap_or(0))])
            }
        }
    }

    fn step(&self, s: &mut ProtoState, t: ThreadId) -> Result<(), String> {
        s.steps += 1;
        let now = s.steps;
        let (op_idx, step_idx) = (s.clients[t].op_idx, s.clients[t].step_idx);
        let comp = &self.programs[t][op_idx];
        if step_idx == 0 && s.clients[t].op_inv.is_none() {
            s.clients[t].op_inv = Some(now);
        }
        let mut advance = true;
        match comp.steps[step_idx] {
            MicroStep::Acquire { start, len } => match s.table.acquire(t, start, len) {
                Ok(h) => s.clients[t].handles.push(h),
                Err(_) if self.scenario.defect == Defect::DoubleGrant => {
                    let h = s.table.acquire_unchecked(t, start, len);
                    s.clients[t].handles.push(h);
                }
                Err(_) => {
                    // Block until some release wakes us; the acquire
                    // micro-step retries then.
                    s.clients[t].waiting = true;
                    advance = false;
                }
            },
            MicroStep::Write { lb, val } | MicroStep::WriteInv { lb, val } => {
                if self.scenario.assert_coverage {
                    let covered = s.clients[t].handles.iter().any(|&h| {
                        s.table
                            .record_of(h)
                            .is_some_and(|r| r.owner == t && r.start <= lb && lb < r.start + r.len)
                    });
                    if !covered {
                        // lint-ok(lock-discipline): grants live in client state until Release
                        return Err(format!(
                            "client {t} writes block {lb} without a covering grant"
                        ));
                    }
                }
                if self.scenario.mig == Some(lb) && s.epoch > 0 {
                    // New-epoch write: lands at the new home and supersedes
                    // any still-outstanding migration copy.
                    s.shadow = val;
                    s.pending = false;
                } else {
                    s.store[lb as usize] = val;
                }
                if matches!(comp.steps[step_idx], MicroStep::WriteInv { .. }) {
                    // The grant's coherence action, atomic with the store
                    // update: no client may keep a superseded copy.
                    for cache in &mut s.caches {
                        cache.remove(&lb);
                    }
                }
            }
            MicroStep::Read { lb } => {
                let v = if self.scenario.mig == Some(lb) && s.epoch > 0 {
                    if s.pending {
                        s.store[lb as usize] // still draining: old home
                    } else {
                        s.shadow
                    }
                } else {
                    s.store[lb as usize]
                };
                s.clients[t].read_vals.push(v);
            }
            MicroStep::CacheRead { lb } => {
                let v = match s.caches[t].get(&lb) {
                    Some(&v) => v,
                    None => {
                        // Miss: read the store (same epoch routing as a
                        // plain read) and fill the client's cache.
                        let v = if self.scenario.mig == Some(lb) && s.epoch > 0 {
                            if s.pending {
                                s.store[lb as usize]
                            } else {
                                s.shadow
                            }
                        } else {
                            s.store[lb as usize]
                        };
                        s.caches[t].insert(lb, v);
                        v
                    }
                };
                s.clients[t].read_vals.push(v);
            }
            MicroStep::Bump => {
                s.epoch += 1;
                s.pending = true;
            }
            MicroStep::Migrate { revalidate } => {
                if !revalidate || s.pending {
                    s.shadow = s.store[self.scenario.mig.unwrap_or(0) as usize];
                    s.pending = false;
                }
            }
            MicroStep::Release => {
                let handles = std::mem::take(&mut s.clients[t].handles);
                for h in handles {
                    s.table.try_release(h).map_err(|e| format!("release failed: {e:?}"))?;
                }
                if self.scenario.defect != Defect::SkipWakeup {
                    for (i, c) in s.clients.iter_mut().enumerate() {
                        if i != t {
                            c.waiting = false;
                        }
                    }
                }
            }
        }
        if advance {
            let steps_len = comp.steps.len();
            let c = &mut s.clients[t];
            c.step_idx += 1;
            if c.step_idx == steps_len {
                let inv = c.op_inv.take().unwrap_or(now);
                let op = match &comp.op {
                    ProtoOp::WriteGroup { start, len, val } => {
                        Some(HistOp::Write { start: *start, len: *len, val: *val })
                    }
                    ProtoOp::ReadGroup { start, .. } | ProtoOp::CachedReadGroup { start, .. } => {
                        Some(HistOp::Read { start: *start, vals: std::mem::take(&mut c.read_vals) })
                    }
                    // A migration preserves contents: no logical effect.
                    ProtoOp::Reconfig => None,
                };
                c.op_idx += 1;
                c.step_idx = 0;
                if let Some(op) = op {
                    s.history.push(OpRecord { client: t, inv, resp: now, op });
                }
            }
        }
        Ok(())
    }

    fn invariant(&self, s: &ProtoState) -> Result<(), String> {
        let held: Vec<_> = s.table.held().collect();
        for (i, a) in held.iter().enumerate() {
            for b in &held[i + 1..] {
                if a.owner != b.owner && a.start < b.start + b.len && b.start < a.start + a.len {
                    return Err(format!(
                        "overlapping grants: client {} [{},+{}) vs client {} [{},+{})",
                        a.owner, a.start, a.len, b.owner, b.start, b.len
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::explore::{Explorer, FailureKind};

    fn all_clean_scenarios() -> Vec<Scenario> {
        vec![
            scenario_contended(Defect::None),
            scenario_reader(Defect::None),
            scenario_three(Defect::None),
            scenario_epoch(Defect::None),
            scenario_cache(Defect::None),
        ]
    }

    /// The values client 0's two cached reads returned, in program order.
    fn client0_reads(s: &ProtoState) -> Vec<u64> {
        s.history
            .iter()
            .filter(|r| r.client == 0)
            .filter_map(|r| match &r.op {
                HistOp::Read { vals, .. } => Some(vals[0]),
                HistOp::Write { .. } => None,
            })
            .collect()
    }

    /// Faithful protocol: the write grant's invalidation purges the
    /// reader's cached copy, so a read issued after the write completes
    /// misses and returns the new value.
    #[test]
    fn grant_invalidation_keeps_cached_reads_fresh() {
        let m = CddModel::new(scenario_cache(Defect::None));
        // c0 fills its cache (0), the writer runs to completion
        // (acquire, coherent write, release), then c0 reads again.
        let (s, fail) = sim_core::explore::replay(&m, &[0, 1, 1, 1, 0], 64);
        assert!(fail.is_none(), "{fail:?}");
        assert_eq!(client0_reads(&s), vec![0, 42], "post-write read must miss and see 42");
    }

    /// Planted defect: skipping the invalidation leaves the stale cached
    /// value visible *after* the write's response — the non-linearizable
    /// history the verify pass's checker must reject.
    #[test]
    fn skip_invalidate_serves_a_stale_read_after_the_write() {
        let m = CddModel::new(scenario_cache(Defect::SkipInvalidate));
        let (s, fail) = sim_core::explore::replay(&m, &[0, 1, 1, 1, 0], 64);
        assert!(fail.is_none(), "{fail:?}");
        assert_eq!(client0_reads(&s), vec![0, 0], "stale cached value must survive the write");
        let write_resp = s
            .history
            .iter()
            .find(|r| matches!(r.op, HistOp::Write { .. }))
            .expect("write completed")
            .resp;
        let second_read = s.history.iter().filter(|r| r.client == 0).nth(1).expect("second read");
        assert!(second_read.inv > write_resp, "the stale read starts after the write responds");
    }

    #[test]
    fn clean_scenarios_explore_clean() {
        for sc in all_clean_scenarios() {
            let name = sc.name;
            let r = Explorer::default().explore(&CddModel::new(sc));
            assert!(r.clean(), "{name}: {:?}", r.failure);
            assert!(r.schedules > 0, "{name}: no schedule reached a leaf");
            assert!(!r.truncated, "{name}: truncated");
        }
    }

    #[test]
    fn double_grant_violates_invariant() {
        let r =
            Explorer::default().explore(&CddModel::new(scenario_contended(Defect::DoubleGrant)));
        let f = r.failure.expect("double grant not caught");
        assert!(matches!(f.kind, FailureKind::Invariant(_)), "{f}");
    }

    #[test]
    fn skipped_wakeup_deadlocks() {
        let r = Explorer::default().explore(&CddModel::new(scenario_contended(Defect::SkipWakeup)));
        let f = r.failure.expect("lost wakeup not caught");
        assert!(matches!(f.kind, FailureKind::Deadlock(_)), "{f}");
    }

    #[test]
    fn split_acquire_deadlocks() {
        let r =
            Explorer::default().explore(&CddModel::new(scenario_contended(Defect::SplitAcquire)));
        let f = r.failure.expect("ABBA deadlock not caught");
        assert!(matches!(f.kind, FailureKind::Deadlock(_)), "{f}");
    }

    #[test]
    fn early_release_fails_coverage() {
        let r =
            Explorer::default().explore(&CddModel::new(scenario_contended(Defect::EarlyRelease)));
        let f = r.failure.expect("uncovered write not caught");
        assert!(matches!(f.kind, FailureKind::Step(_)), "{f}");
    }

    #[test]
    fn pruning_preserves_clean_verdict() {
        let full = Explorer { sleep_sets: false, ..Explorer::default() };
        let pruned = Explorer::default();
        let a = full.explore(&CddModel::new(scenario_three(Defect::None)));
        let b = pruned.explore(&CddModel::new(scenario_three(Defect::None)));
        assert!(a.clean() && b.clean());
        assert!(b.pruned > 0, "no pruning happened");
        assert!(b.steps <= a.steps, "pruning did not reduce work");
    }

    #[test]
    fn history_records_complete_ops() {
        let m = CddModel::new(scenario_reader(Defect::None));
        let (s, fail) = sim_core::explore::replay(&m, &[], 64);
        assert!(fail.is_none(), "{fail:?}");
        assert_eq!(s.history.len(), 2);
        for r in &s.history {
            assert!(r.inv <= r.resp);
        }
    }
}
