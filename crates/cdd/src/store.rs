//! The block-store abstraction shared by the serverless I/O space and the
//! centralized NFS baseline, so file systems and workloads run unchanged
//! over any architecture.

use sim_core::Plan;

use crate::system::{IoError, IoSystem};

/// A logical block device any cluster node can address.
///
/// Implemented by [`IoSystem`] (the CDD single I/O space, any RAID layout)
/// and by `nfs_sim::NfsSystem` (everything through one server).
pub trait BlockStore {
    /// Block size in bytes.
    fn block_size(&self) -> u64;

    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Number of client nodes.
    fn nodes(&self) -> usize;

    /// Short name of the backing architecture (for reports).
    fn arch_name(&self) -> String;

    /// The CPU resource of `client`'s node (workloads charge compute
    /// phases against it).
    fn cpu_of(&self, client: usize) -> sim_core::ResourceId;

    /// Write whole blocks at `lb0` on behalf of node `client`; bytes are
    /// durable on return, the [`Plan`] carries the cost.
    fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError>;

    /// Read `nblocks` at `lb0` for node `client`.
    fn read(&mut self, client: usize, lb0: u64, nblocks: u64) -> Result<(Vec<u8>, Plan), IoError>;

    /// Flush any write-behind state (deferred OSM image groups). The
    /// returned plan performs the remaining background traffic; stores
    /// with no deferral return [`Plan::Noop`].
    fn flush(&mut self) -> Plan {
        Plan::Noop
    }

    /// True if clients may cache metadata blocks between operations. The
    /// CDD consistency module makes caching safe (write-invalidate over
    /// the replicated lock table); 1999-era NFS revalidated attributes at
    /// the server on every access, so its clients get no such benefit.
    fn caches_metadata(&self) -> bool {
        true
    }
}

impl<T: BlockStore + ?Sized> BlockStore for Box<T> {
    fn block_size(&self) -> u64 {
        (**self).block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        (**self).capacity_blocks()
    }

    fn nodes(&self) -> usize {
        (**self).nodes()
    }

    fn arch_name(&self) -> String {
        (**self).arch_name()
    }

    fn cpu_of(&self, client: usize) -> sim_core::ResourceId {
        (**self).cpu_of(client)
    }

    fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        (**self).write(client, lb0, data)
    }

    fn read(&mut self, client: usize, lb0: u64, nblocks: u64) -> Result<(Vec<u8>, Plan), IoError> {
        (**self).read(client, lb0, nblocks)
    }

    fn flush(&mut self) -> Plan {
        (**self).flush()
    }

    fn caches_metadata(&self) -> bool {
        (**self).caches_metadata()
    }
}

impl BlockStore for IoSystem {
    fn block_size(&self) -> u64 {
        IoSystem::block_size(self)
    }

    fn capacity_blocks(&self) -> u64 {
        IoSystem::capacity_blocks(self)
    }

    fn nodes(&self) -> usize {
        self.cluster.cfg.nodes
    }

    fn arch_name(&self) -> String {
        self.layout().name().to_string()
    }

    fn cpu_of(&self, client: usize) -> sim_core::ResourceId {
        self.cluster.nodes[client].cpu
    }

    fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        IoSystem::write(self, client, lb0, data)
    }

    fn read(&mut self, client: usize, lb0: u64, nblocks: u64) -> Result<(Vec<u8>, Plan), IoError> {
        IoSystem::read(self, client, lb0, nblocks)
    }

    fn flush(&mut self) -> Plan {
        self.flush_images()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn iosystem_implements_blockstore() {
        let (mut _e, mut s) = crate::testkit::shape(4, 1, 4 << 20, Arch::RaidX);
        let store: &mut dyn BlockStore = &mut s;
        assert_eq!(store.nodes(), 4);
        assert_eq!(store.arch_name(), "RAID-x");
        let bs = store.block_size() as usize;
        store.write(0, 0, &vec![9u8; bs]).unwrap();
        let (got, _) = store.read(1, 0, 1).unwrap();
        assert_eq!(got, vec![9u8; bs]);
    }
}
