//! Scenario compilation for the `raidx-model` protocol checker: each
//! scripted [`ProtoOp`] breaks into atomic scheduler-visible
//! [`MicroStep`]s (acquire the lock group, write/read one block,
//! release; bump the epoch, migrate the pending block) so the explorer
//! in [`crate::proto`] can preempt between any two. Seeded [`Defect`]s
//! are planted here, at compilation time, by distorting the step
//! sequence.

use crate::scenarios::{Defect, ProtoOp, Scenario};

/// One atomic scheduler-visible action of a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MicroStep {
    Acquire {
        start: u64,
        len: u64,
    },
    Write {
        lb: u64,
        val: u64,
    },
    Read {
        lb: u64,
    },
    /// Lock-free cached read of one block: hit serves the client's
    /// cached value, miss reads the store and fills the cache — one
    /// atomic action, like the real cache's fill under the driver.
    CacheRead {
        lb: u64,
    },
    /// Coherent store write: update the block *and* drop every client's
    /// cached copy of it in one atomic action — the write grant carries
    /// the invalidation, and the implementation performs both under the
    /// same grant with no read able to interleave. Splitting them would
    /// itself be the bug: any window between the store update and the
    /// purge lets one reader observe the new value while another still
    /// hits its stale copy. [`Defect::SkipInvalidate`] plants exactly
    /// that bug by compiling a plain `Write` instead.
    WriteInv {
        lb: u64,
        val: u64,
    },
    Release,
    /// Epoch transition: placement flips, the migrating block goes pending.
    Bump,
    /// Migration copy old home → new home. The faithful protocol
    /// re-validates the pending flag (a new-epoch write already moved the
    /// block); the seeded defect copies unconditionally.
    Migrate {
        revalidate: bool,
    },
}

/// A scripted operation compiled to micro-steps.
#[derive(Debug, Clone)]
pub(crate) struct CompiledOp {
    pub(crate) op: ProtoOp,
    pub(crate) steps: Vec<MicroStep>,
}

/// Whether any client of the scenario scripts a lock-free cached read —
/// the trigger for emitting writer-side invalidation micro-steps.
fn has_cached_reader(sc: &Scenario) -> bool {
    sc.scripts.iter().flatten().any(|op| matches!(op, ProtoOp::CachedReadGroup { .. }))
}

pub(crate) fn compile_op(op: &ProtoOp, sc: &Scenario, client: usize) -> CompiledOp {
    let defect = sc.defect;
    let mut steps = Vec::new();
    match *op {
        ProtoOp::WriteGroup { start, len, val } => {
            match defect {
                Defect::SplitAcquire if len > 1 => {
                    // Non-atomic per-block acquisition; odd clients in
                    // descending order — the classic ABBA shape.
                    let blocks: Vec<u64> = (start..start + len).collect();
                    let order: Vec<u64> = if client.is_multiple_of(2) {
                        blocks
                    } else {
                        blocks.into_iter().rev().collect()
                    };
                    for lb in order {
                        steps.push(MicroStep::Acquire { start: lb, len: 1 });
                    }
                }
                _ => steps.push(MicroStep::Acquire { start, len }),
            }
            // Invalidations ride the write grant — but only in scenarios
            // that actually script cached readers, so scenarios without a
            // cache keep their exact historical step sequences (and the
            // perf gate's exploration work counters).
            let coherent = has_cached_reader(sc) && defect != Defect::SkipInvalidate;
            let write_step = |lb: u64| {
                if coherent {
                    MicroStep::WriteInv { lb, val }
                } else {
                    MicroStep::Write { lb, val }
                }
            };
            if defect == Defect::EarlyRelease && len > 1 {
                steps.push(write_step(start));
                steps.push(MicroStep::Release);
                for lb in start + 1..start + len {
                    steps.push(write_step(lb));
                }
            } else {
                for lb in start..start + len {
                    steps.push(write_step(lb));
                }
                steps.push(MicroStep::Release);
            }
        }
        ProtoOp::CachedReadGroup { start, len } => {
            // Lock-free by design: coherence is the writers' problem.
            for lb in start..start + len {
                steps.push(MicroStep::CacheRead { lb });
            }
        }
        ProtoOp::ReadGroup { start, len } => {
            let locked = defect != Defect::UnlockedRead;
            if locked {
                steps.push(MicroStep::Acquire { start, len });
            }
            for lb in start..start + len {
                steps.push(MicroStep::Read { lb });
            }
            if locked {
                steps.push(MicroStep::Release);
            }
        }
        ProtoOp::Reconfig => {
            // The meta lock is a reserved range past the data blocks —
            // the model analogue of `membership::EPOCH_META_LB`.
            steps.push(MicroStep::Acquire { start: sc.blocks, len: 1 });
            steps.push(MicroStep::Bump);
            steps.push(MicroStep::Release);
            let mig = sc.mig.unwrap_or(0);
            if defect == Defect::UnsyncedReconfig {
                steps.push(MicroStep::Migrate { revalidate: false });
            } else {
                steps.push(MicroStep::Acquire { start: mig, len: 1 });
                steps.push(MicroStep::Migrate { revalidate: true });
                steps.push(MicroStep::Release);
            }
        }
    }
    CompiledOp { op: op.clone(), steps }
}
