//! Scenario compilation for the `raidx-model` protocol checker: each
//! scripted [`ProtoOp`] breaks into atomic scheduler-visible
//! [`MicroStep`]s (acquire the lock group, write/read one block,
//! release; bump the epoch, migrate the pending block) so the explorer
//! in [`crate::proto`] can preempt between any two. Seeded [`Defect`]s
//! are planted here, at compilation time, by distorting the step
//! sequence.

use crate::scenarios::{Defect, ProtoOp, Scenario};

/// One atomic scheduler-visible action of a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MicroStep {
    Acquire {
        start: u64,
        len: u64,
    },
    Write {
        lb: u64,
        val: u64,
    },
    Read {
        lb: u64,
    },
    Release,
    /// Epoch transition: placement flips, the migrating block goes pending.
    Bump,
    /// Migration copy old home → new home. The faithful protocol
    /// re-validates the pending flag (a new-epoch write already moved the
    /// block); the seeded defect copies unconditionally.
    Migrate {
        revalidate: bool,
    },
}

/// A scripted operation compiled to micro-steps.
#[derive(Debug, Clone)]
pub(crate) struct CompiledOp {
    pub(crate) op: ProtoOp,
    pub(crate) steps: Vec<MicroStep>,
}

pub(crate) fn compile_op(op: &ProtoOp, sc: &Scenario, client: usize) -> CompiledOp {
    let defect = sc.defect;
    let mut steps = Vec::new();
    match *op {
        ProtoOp::WriteGroup { start, len, val } => {
            match defect {
                Defect::SplitAcquire if len > 1 => {
                    // Non-atomic per-block acquisition; odd clients in
                    // descending order — the classic ABBA shape.
                    let blocks: Vec<u64> = (start..start + len).collect();
                    let order: Vec<u64> = if client.is_multiple_of(2) {
                        blocks
                    } else {
                        blocks.into_iter().rev().collect()
                    };
                    for lb in order {
                        steps.push(MicroStep::Acquire { start: lb, len: 1 });
                    }
                }
                _ => steps.push(MicroStep::Acquire { start, len }),
            }
            if defect == Defect::EarlyRelease && len > 1 {
                steps.push(MicroStep::Write { lb: start, val });
                steps.push(MicroStep::Release);
                for lb in start + 1..start + len {
                    steps.push(MicroStep::Write { lb, val });
                }
            } else {
                for lb in start..start + len {
                    steps.push(MicroStep::Write { lb, val });
                }
                steps.push(MicroStep::Release);
            }
        }
        ProtoOp::ReadGroup { start, len } => {
            let locked = defect != Defect::UnlockedRead;
            if locked {
                steps.push(MicroStep::Acquire { start, len });
            }
            for lb in start..start + len {
                steps.push(MicroStep::Read { lb });
            }
            if locked {
                steps.push(MicroStep::Release);
            }
        }
        ProtoOp::Reconfig => {
            // The meta lock is a reserved range past the data blocks —
            // the model analogue of `membership::EPOCH_META_LB`.
            steps.push(MicroStep::Acquire { start: sc.blocks, len: 1 });
            steps.push(MicroStep::Bump);
            steps.push(MicroStep::Release);
            let mig = sc.mig.unwrap_or(0);
            if defect == Defect::UnsyncedReconfig {
                steps.push(MicroStep::Migrate { revalidate: false });
            } else {
                steps.push(MicroStep::Acquire { start: mig, len: 1 });
                steps.push(MicroStep::Migrate { revalidate: true });
                steps.push(MicroStep::Release);
            }
        }
    }
    CompiledOp { op: op.clone(), steps }
}
