//! Fault state and dynamic membership of the [`IoSystem`]: disk and node
//! failures, and the epoch transitions that add, remove or replace disks
//! while the array serves I/O.
//!
//! An epoch transition is a metadata operation: it binds a logical slot
//! to a new physical disk in the [`cluster::ClusterMap`] (serialised
//! through the replicated lock-group table via the reserved
//! [`EPOCH_META_LB`] range) and records which physical blocks of the
//! vacated disk still await migration. The bytes then move
//! *incrementally* — [`IoSystem::rebalance`] drains the pending set in
//! bounded, crash-idempotent steps while reads keep resolving pending
//! blocks against the old home. A full-disk replace is just
//! `add_disk` + `remove_disk`; the cost difference against a full
//! rebuild is what the `rebalance_under_load` bench table quantifies.

use std::collections::BTreeSet;

use raidx_core::{BlockAddr, FaultSet};
use sim_core::Engine;

use crate::error::IoError;
use crate::system::IoSystem;

/// First logical block of the lock range reserved for epoch transitions.
///
/// Data requests lock `[lb0, lb0+nblocks)` below the array capacity;
/// membership operations lock this far-away range instead, so a
/// transition excludes concurrent transitions without colliding with any
/// data lock. Kept below `1 << 56` — the protocol cell namespace bound —
/// so the range stays representable everywhere a lock range can flow.
pub(crate) const EPOCH_META_LB: u64 = (1 << 56) - 64;
/// Length of the reserved epoch-transition lock range.
pub(crate) const EPOCH_META_SPAN: u64 = 64;

impl IoSystem {
    /// Disks whose *media* is unavailable: failed or transiently offline.
    /// Scrub and recovery planning use this set — connectivity does not
    /// matter to on-disk redundancy relations.
    pub fn storage_faults(&self) -> FaultSet {
        let mut s = self.faults.clone();
        for d in self.offline.iter() {
            s.insert(d);
        }
        s
    }

    /// Disks `client` cannot use right now: failed, offline, or hosted on
    /// a node unreachable from `client` through the current partitions.
    /// Every request is planned against this set, so in-flight partitions
    /// are observed — this is the client module's view of the array.
    pub fn effective_faults(&self, client: usize) -> FaultSet {
        let mut eff = self.storage_faults();
        if !self.partitions.is_empty() {
            for g in 0..self.cluster.ndisks() {
                if !self.partitions.reachable(client, self.cluster.node_of_disk(g)) {
                    eff.insert(g);
                }
            }
        }
        eff
    }

    /// Every copy location of logical block `lb` (data, images, parity),
    /// in slot space.
    pub(crate) fn copy_addrs(&self, lb: u64) -> Vec<BlockAddr> {
        let mut addrs = vec![self.layout.locate_data(lb)];
        addrs.extend(self.layout.locate_images(lb));
        addrs.extend(self.layout.locate_parity(lb));
        addrs
    }

    /// Cut `node` off from the switch: remote clients lose access to its
    /// disks (and it loses access to theirs) until [`IoSystem::heal_node`].
    pub fn partition_node(&mut self, node: usize) {
        self.partitions.partition(node);
        // A cut-off node can no longer hear write-grant invalidations,
        // so its cached extents are untrustworthy the moment the cable
        // drops — discard them all.
        self.cache_flush_node(node);
    }

    /// Reconnect `node`. The caller should then resync the blocks parked
    /// against its disks ([`IoSystem::resync_parked`]) before trusting
    /// redundancy again.
    pub fn heal_node(&mut self, node: usize) {
        self.partitions.heal(node);
    }

    /// Record `lb`'s copy on unavailable physical `disk` as needing
    /// restoration.
    pub(crate) fn park(&mut self, disk: usize, lb: u64) {
        self.parked.entry(disk).or_default().insert(lb);
    }

    /// Fail a disk *permanently*: its contents are lost on the functional
    /// plane and all planning routes around it. Any image blocks still
    /// buffered for it in the write-behind queue are drained (flushing
    /// them later would write into a dead disk and leak queue accounting)
    /// and parked for the eventual rebuild.
    pub fn fail_disk(&mut self, disk: usize) {
        self.faults.insert(disk);
        self.offline.remove(disk);
        self.plane.fail(disk);
        let drained = self.images.remove_disk(disk);
        if self.tracer.is_some() {
            let lbs: Vec<u64> = drained.iter().map(|p| p.lb).collect();
            self.trace_image_drain(&lbs);
        }
        for img in drained {
            self.park(disk, img.lb);
        }
    }

    /// Take a disk *transiently* offline: I/O is rejected but the
    /// contents survive. Pending image-queue entries for it are drained
    /// and parked, exactly as in [`IoSystem::fail_disk`]; recovery is the
    /// cheap path — [`IoSystem::recover_disk_transient`] resyncs only the
    /// parked blocks from surviving copies instead of rebuilding the
    /// whole disk.
    pub fn fail_disk_transient(&mut self, disk: usize) {
        assert!(!self.faults.contains(disk), "disk already permanently failed");
        self.offline.insert(disk);
        self.plane.set_offline(disk, true);
        let drained = self.images.remove_disk(disk);
        if self.tracer.is_some() {
            let lbs: Vec<u64> = drained.iter().map(|p| p.lb).collect();
            self.trace_image_drain(&lbs);
        }
        for img in drained {
            self.park(disk, img.lb);
        }
    }

    /// A node crashed: cut it off from the switch and take its disks
    /// transiently offline (the machine is down; the media survives a
    /// reboot). Image-queue entries buffered *by* the crashed node are
    /// re-homed to each target disk's owner node, which holds the
    /// already-written primary locally.
    pub fn crash_node(&mut self, node: usize) {
        self.partitions.partition(node);
        // Same reasoning as `partition_node`: the crashed node's cache
        // dies with it (and must come back empty after a reboot).
        self.cache_flush_node(node);
        for g in 0..self.cluster.ndisks() {
            if self.cluster.node_of_disk(g) == node
                && !self.faults.contains(g)
                && !self.offline.contains(g)
            {
                self.fail_disk_transient(g);
            }
        }
        let owners: Vec<usize> =
            (0..self.cluster.ndisks()).map(|g| self.cluster.node_of_disk(g)).collect();
        self.images.reassign_client(node, |p| owners[p.addr.disk]);
    }

    /// Hot-add a physical disk to the array as a *spare*, on behalf of
    /// node `client`. Registers it with the engine (same numbering and
    /// seed rules as boot), grows the functional plane, and appends a
    /// roster epoch. The disk serves no placement until a later
    /// [`IoSystem::remove_disk`] promotes it.
    pub fn add_disk(&mut self, engine: &mut Engine, client: usize) -> Result<usize, IoError> {
        let lock =
            self.locks.acquire(client, EPOCH_META_LB, EPOCH_META_SPAN).map_err(IoError::Lock)?;
        let g = self.cluster.add_disk(engine);
        let p = self.plane.add_disk();
        let s = self.placer.add_spare();
        debug_assert!(g == p && p == s, "disk id spaces diverged: {g}/{p}/{s}");
        // Membership epoch bump: flush every client's cache while the
        // meta lock is held, preserving the StaleEpoch admission story —
        // no cached extent may straddle an epoch transition.
        self.cache_flush_all();
        self.locks.release(lock);
        Ok(g)
    }

    /// Remove (retire) active physical disk `phys` from the array,
    /// promoting the first registered spare into its slot. Returns the
    /// spare's physical id.
    ///
    /// This is the epoch transition: placement flips to the new home
    /// immediately, while the vacated disk's blocks drain incrementally
    /// through [`IoSystem::rebalance`]. Until a block migrates, reads of
    /// it are served from the old disk (if its media survives) or routed
    /// through redundancy (if not) — the array keeps serving I/O with
    /// zero failed ops either way. Blocks *parked* against the old disk
    /// by degraded writes are stale there, so they transfer as ledger
    /// entries against the new home (restored later by
    /// [`IoSystem::resync_parked`]) instead of being migrated as bytes.
    ///
    /// Panics if `phys` is not Active or no spare is registered — both
    /// are operator errors, not runtime conditions.
    pub fn remove_disk(&mut self, client: usize, phys: usize) -> Result<usize, IoError> {
        let slot = self.placer.map().slot_of(phys).expect("can only remove an active disk"); // lint-ok(no-unwrap): operator-error invariant documented on the method
        let spare =
            self.placer.map().first_spare().expect("removing a disk requires a registered spare"); // lint-ok(no-unwrap): operator-error invariant documented on the method
        let lock =
            self.locks.acquire(client, EPOCH_META_LB, EPOCH_META_SPAN).map_err(IoError::Lock)?;
        let old_dead = self.plane.is_failed(phys) || self.plane.is_offline(phys);

        let parked_old: BTreeSet<u64> = self.parked.remove(&phys).unwrap_or_default();
        let mut pending: BTreeSet<u64> = if self.plane.is_failed(phys) {
            // The media is gone (its block map was cleared), so the
            // migration set is everything the layout places on the slot:
            // each such block reconstructs from redundancy.
            let mut p = BTreeSet::new();
            for lb in 0..self.high_water {
                for a in self.copy_addrs(lb) {
                    if a.disk == slot {
                        p.insert(a.block);
                    }
                }
            }
            p
        } else {
            self.plane.written_blocks(phys).into_iter().collect()
        };
        // Parked copies are stale on the old disk: migrating their bytes
        // would resurrect overwritten data. They move as ledger entries.
        for &lb in &parked_old {
            for a in self.copy_addrs(lb) {
                if a.disk == slot {
                    pending.remove(&a.block);
                }
            }
        }
        if !parked_old.is_empty() {
            self.parked.entry(spare).or_default().extend(parked_old);
        }

        self.placer.begin_promote(slot, spare, old_dead, pending);
        // Buffered write-behind flushes aimed at the old disk now charge
        // the new home (their bytes are already functionally durable and
        // migrate with the pending set; only the timing plan retargets).
        self.images.retarget_disk(phys, spare);
        // The retired disk leaves fault bookkeeping: it is no longer part
        // of the array, and the slot's health tracks the new home now.
        self.faults.remove(phys);
        self.offline.remove(phys);
        // Epoch transition: cached extents must not survive a placement
        // change (same rule as `add_disk`).
        self.cache_flush_all();
        self.locks.release(lock);
        Ok(spare)
    }

    /// Replace active physical disk `phys` with a freshly added blank
    /// disk, in one operation: hot-add a spare, then retire `phys` onto
    /// it. Returns the new disk's physical id. The caller drives the data
    /// movement via [`IoSystem::rebalance`].
    pub fn replace_disk(
        &mut self,
        engine: &mut Engine,
        client: usize,
        phys: usize,
    ) -> Result<usize, IoError> {
        self.add_disk(engine, client)?;
        self.remove_disk(client, phys)
    }
}

#[cfg(test)]
mod tests {
    use crate::testkit::shape;
    use raidx_core::Arch;

    /// Satellite regression: failing a disk must drain that disk's
    /// buffered image-queue entries (parking them), and the queue's
    /// length accounting must stay consistent with what remains.
    #[test]
    fn fail_disk_drains_pending_image_queue_entries() {
        let (_engine, mut sys) = shape(4, 2, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        for lb in 0..6u64 {
            sys.write(0, lb, &vec![0x3C; bs]).expect("seed write");
        }
        let before = sys.pending_image_blocks();
        assert!(before > 0, "RAID-x must buffer write-behind images");
        let img_disk = (0..sys.cluster.ndisks())
            .find(|&g| sys.images.blocks_on_disk(g) > 0)
            .expect("some disk has buffered images");
        sys.fail_disk(img_disk);
        let after = sys.pending_image_blocks();
        assert!(after < before, "no entries drained for the failed disk");
        assert_eq!(
            before - after,
            sys.parked_blocks(img_disk),
            "every drained image must be parked for rebuild"
        );
        // Accounting survives a full flush of the survivors.
        let _ = sys.flush_images();
        assert_eq!(sys.pending_image_blocks(), 0);
    }

    /// Transient offline takes the same drain path as permanent failure.
    #[test]
    fn transient_offline_also_drains_image_queue() {
        let (_engine, mut sys) = shape(4, 2, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        for lb in 0..6u64 {
            sys.write(0, lb, &vec![0x3C; bs]).expect("seed write");
        }
        let before = sys.pending_image_blocks();
        let img_disk = (0..sys.cluster.ndisks())
            .find(|&g| sys.images.blocks_on_disk(g) > 0)
            .expect("some disk has buffered images");
        sys.fail_disk_transient(img_disk);
        assert_eq!(before - sys.pending_image_blocks(), sys.parked_blocks(img_disk));
        let _ = sys.flush_images();
        assert_eq!(sys.pending_image_blocks(), 0);
    }

    /// Crashing a node takes its disks transiently offline, partitions
    /// it, and re-homes its buffered image flushes.
    #[test]
    fn crash_node_combines_partition_and_transient_disks() {
        let (_engine, mut sys) = shape(4, 2, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        for lb in 0..4u64 {
            sys.write(2, lb, &vec![1u8; bs]).expect("seed");
        }
        sys.crash_node(2);
        assert!(sys.partitions().is_partitioned(2));
        for g in 0..sys.cluster.ndisks() {
            if sys.cluster.node_of_disk(g) == 2 {
                assert!(sys.offline_disks().contains(g), "disk {g} should be offline");
            }
        }
        // Remaining buffered images must not be owned by the dead node.
        let drained = sys.images.drain_all();
        assert!(drained.iter().all(|p| p.client != 2), "crashed node still owns flushes");
    }
}
