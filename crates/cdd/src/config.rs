//! Tunables of the cooperative disk driver layer.

use sim_core::SimDuration;

/// How reads are spread across a block's replicas (the "I/O load
/// balancing" the paper names as the Trojans project's next phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadBalance {
    /// Follow the layout's static preference (alternate copies by row —
    /// the behaviour of the original prototype).
    #[default]
    LayoutPreference,
    /// Always read the primary copy (mirrors serve only failures).
    PrimaryOnly,
    /// Track bytes dispatched per disk and send each run to the less
    /// loaded copy.
    LeastLoaded,
}

/// Costs and policies of the CDD protocol, separate from the hardware
/// parameters in [`cluster::ClusterConfig`].
#[derive(Debug, Clone)]
pub struct CddConfig {
    /// Size of a control message (request header, lock message).
    pub control_bytes: u64,
    /// Size of an acknowledgement.
    pub ack_bytes: u64,
    /// Host XOR bandwidth for parity math, bytes/second.
    pub xor_rate: u64,
    /// Extra driver CPU time charged per block operation (kernel-level CDD
    /// dispatch; the paper's point is that this is *small* because no
    /// cross-space system calls are needed).
    pub driver_overhead: SimDuration,
    /// Whether writes first acquire a lock group via a broadcast round to
    /// every peer CDD's consistency module (the replicated lock-group
    /// table). Disable to measure the consistency protocol's cost.
    pub lock_broadcast: bool,
    /// Whether RAID-x image flushes run in the background (the OSM claim).
    /// Disabling makes image writes foreground — the key ablation.
    pub background_mirroring: bool,
    /// Bound on the OSM write-behind backlog, in buffered image blocks.
    /// `None` (the default) reproduces the paper's unbounded "background"
    /// queue. With `Some(bound)`, a foreground write that leaves more
    /// than `bound` image blocks buffered sheds whole mirroring groups —
    /// oldest first — as a *foreground* partial clustered flush, so
    /// `IoSystem::pending_image_blocks()` never exceeds the bound between
    /// requests. This is the backpressure that keeps a sustained burst
    /// (the Figure-5 contention regime) from growing the image queue
    /// without limit.
    pub max_image_backlog: Option<usize>,
    /// Replica-selection policy for reads.
    pub read_balance: ReadBalance,
    /// How long a client waits on an unresponsive remote CDD before
    /// declaring the attempt timed out and failing over to another
    /// replica. Charged once per failed attempt on the request's timing
    /// plan. The default (50 ms) is several disk service times — long
    /// enough that a merely-busy disk never trips it.
    pub request_timeout: sim_core::SimDuration,
    /// Bounded retry: how many failover attempts a request may make after
    /// its first try times out. `0` disables failover entirely — an
    /// unreachable primary surfaces [`crate::IoError::Unreachable`]
    /// immediately.
    pub max_retries: u32,
    /// Per-client block cache in front of the read path
    /// ([`crate::cache`]). `None` (the default) disables caching — the
    /// system is byte- and plan-identical to an uncached build, which
    /// the determinism fingerprints gate. `Some` enables it with the
    /// given capacity; coherence rides the lock-group grant path
    /// (write-invalidate through the replicated table) and membership
    /// epoch bumps flush every cached extent.
    pub cache: Option<crate::cache::CacheConfig>,
}

impl Default for CddConfig {
    fn default() -> Self {
        CddConfig {
            control_bytes: 64,
            ack_bytes: 32,
            xor_rate: 400_000_000,
            driver_overhead: SimDuration::from_micros(15),
            lock_broadcast: true,
            background_mirroring: true,
            max_image_backlog: None,
            read_balance: ReadBalance::default(),
            request_timeout: SimDuration::from_millis(50),
            max_retries: 2,
            cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CddConfig::default();
        assert!(c.control_bytes > 0 && c.ack_bytes > 0);
        assert!(c.xor_rate > 0);
        assert!(c.lock_broadcast);
        assert!(c.background_mirroring);
        assert!(c.max_image_backlog.is_none(), "write-behind is unbounded by default");
        assert!(c.request_timeout > SimDuration::from_millis(10), "timeout >> disk service time");
        assert!(c.max_retries >= 1, "failover must be on by default");
        assert!(c.cache.is_none(), "client caching is off by default (byte-identical runs)");
    }
}
