//! Errors surfaced by the CDD I/O pipeline.
//!
//! Every layer of the pipeline — front-end admission, scheme drivers,
//! data plane — and every [`crate::BlockStore`] implementation reports
//! failures through this one type, so workloads and file systems handle
//! the serverless array and the NFS baseline identically.

use cluster::DiskError;

use crate::locks::LockConflict;

/// Errors surfaced by the I/O system.
#[derive(Debug)]
pub enum IoError {
    /// Logical address beyond the layout's capacity.
    OutOfRange {
        /// Offending logical block.
        lb: u64,
        /// Layout capacity in blocks.
        capacity: u64,
    },
    /// Buffer length not a whole number of blocks / wrong size.
    BadLength {
        /// Required length unit (the block size).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// No surviving copy of a block.
    DataLoss {
        /// The unrecoverable logical block.
        lb: u64,
    },
    /// A peer holds an overlapping lock group.
    Lock(LockConflict),
    /// Every copy of a requested block sits behind an unresponsive node
    /// (NIC partition or crash) and the bounded retry budget is spent.
    /// Distinct from [`IoError::DataLoss`]: the bytes still exist and the
    /// request would succeed once the partition heals — the client must
    /// *not* hang waiting for that.
    Unreachable {
        /// The unresponsive node the last attempt timed out against.
        node: usize,
        /// Attempts made (1 initial + retries) before giving up.
        attempts: u32,
    },
    /// The request was admitted under a placement epoch the array has
    /// since moved past (writes must target the current epoch; reads may
    /// trail by exactly one while that epoch's migration drains).
    StaleEpoch {
        /// Epoch the request was admitted under.
        seen: u64,
        /// Current placement epoch.
        current: u64,
    },
    /// Functional-plane failure (invariant violation).
    Disk(DiskError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::OutOfRange { lb, capacity } => {
                write!(f, "block {lb} beyond capacity {capacity}")
            }
            IoError::BadLength { expected, got } => {
                write!(f, "buffer {got} bytes, expected {expected}")
            }
            IoError::DataLoss { lb } => write!(f, "block {lb} unrecoverable"),
            IoError::Lock(c) => write!(f, "lock conflict with node {}", c.holder),
            IoError::Unreachable { node, attempts } => {
                write!(f, "node {node} unreachable after {attempts} attempts")
            }
            IoError::StaleEpoch { seen, current } => {
                write!(f, "admitted under epoch {seen}, array is at epoch {current}")
            }
            IoError::Disk(e) => write!(f, "data plane: {e}"),
        }
    }
}
impl std::error::Error for IoError {}

impl From<DiskError> for IoError {
    fn from(e: DiskError) -> Self {
        IoError::Disk(e)
    }
}
