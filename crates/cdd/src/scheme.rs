//! Scheme-driver layer of the CDD pipeline: one driver per
//! [`WriteScheme`], behind the [`SchemeDriver`] trait.
//!
//! The front end admits and locks a request; the matching driver then
//! owns the whole write policy — placement, fault handling, functional
//! data movement and the timing plan:
//!
//! * [`PlainDriver`] (`WriteScheme::None`) — plain striping.
//! * [`MirrorDriver`] (`ForegroundMirror` / `BackgroundMirror`) — both
//!   copies foreground (RAID-10, chained declustering), or RAID-x OSM
//!   write-behind: the ack follows the data writes and images buffer in
//!   the [`ImageQueue`], flushing per mirroring group as long detached
//!   sequential runs. With [`CddConfig::max_image_backlog`] set, a write
//!   that overfills the queue pays the overflow as a foreground partial
//!   clustered flush (bounded backpressure).
//! * [`ParityDriver`] (`Parity`) — RAID-5: full stripes compute parity
//!   client-side and write `n` streams; partial stripes pay the
//!   four-operation read-modify-write (the small-write problem).
//!
//! Drivers are stateless: all array state they touch is borrowed through
//! [`WriteCtx`], so the dispatch is a table lookup ([`driver_for`]) and
//! new layouts add a driver without touching the orchestrator.

use std::collections::{BTreeMap, BTreeSet};

use cluster::{xor_into, Cluster, DataPlane};
use raidx_core::{BlockAddr, FaultSet, Layout, WriteScheme};
use sim_core::plan::{background, par, seq};
use sim_core::Plan;

use crate::config::CddConfig;
use crate::error::IoError;
use crate::image_queue::{ImageQueue, PendingImage};
use crate::ops::OpBuilder;
use crate::runs::{merge_runs, Run};

/// Everything a scheme driver may touch, borrowed field-by-field from the
/// [`crate::IoSystem`] for the duration of one admitted write.
pub struct WriteCtx<'a> {
    /// The layout placing blocks.
    pub layout: &'a dyn Layout,
    /// The functional plane holding the bytes.
    pub plane: &'a mut DataPlane,
    /// Currently failed disks.
    pub faults: &'a FaultSet,
    /// Cluster resource handles for plan building.
    pub cluster: &'a Cluster,
    /// Protocol cost parameters and policies.
    pub cfg: &'a CddConfig,
    /// The OSM write-behind queue (mirror drivers only).
    pub images: &'a mut ImageQueue,
    /// Degraded-write ledger: per unavailable disk, the logical blocks
    /// whose copy on that disk was *skipped* by a driver. Transient
    /// recovery resyncs exactly these; permanent rebuild clears them
    /// wholesale.
    pub parked: &'a mut BTreeMap<usize, BTreeSet<u64>>,
    /// When tracing, the logical blocks whose images this write flushed
    /// out of the [`ImageQueue`] (full groups and backlog overflow).
    /// `None` when the orchestrator has no tracer installed.
    pub surrendered: Option<&'a mut Vec<u64>>,
}

impl<'a> WriteCtx<'a> {
    /// Plan builder over this context's cluster. The returned builder
    /// borrows the cluster and config directly (not the context), so it
    /// coexists with later mutation of the plane or image queue.
    pub fn ops(&self) -> OpBuilder<'a> {
        OpBuilder { cluster: self.cluster, cfg: self.cfg }
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.cluster.cfg.block_size as usize
    }

    /// Record that `lb`'s copy on unavailable `disk` was skipped by a
    /// degraded write and must be restored when the disk comes back (or
    /// is rebuilt).
    pub fn park(&mut self, disk: usize, lb: u64) {
        self.parked.entry(disk).or_default().insert(lb);
    }

    /// The block of `data` backing logical block `lb` of a request
    /// starting at `lb0`.
    pub fn slice<'d>(&self, data: &'d [u8], lb0: u64, lb: u64) -> &'d [u8] {
        let bs = self.block_size();
        let off = ((lb - lb0) as usize) * bs;
        &data[off..off + bs]
    }
}

/// One write policy of the single I/O space.
pub trait SchemeDriver: Sync {
    /// The scheme this driver implements (dispatch sanity / reports).
    fn scheme(&self) -> WriteScheme;

    /// Execute an admitted, locked write: move the bytes on the
    /// functional plane now and return the timing plan.
    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError>;
}

/// The driver implementing `scheme`.
pub fn driver_for(scheme: WriteScheme) -> &'static dyn SchemeDriver {
    static PLAIN: PlainDriver = PlainDriver;
    static FOREGROUND: MirrorDriver = MirrorDriver { write_behind: false };
    static BACKGROUND: MirrorDriver = MirrorDriver { write_behind: true };
    static PARITY: ParityDriver = ParityDriver;
    match scheme {
        WriteScheme::None => &PLAIN,
        WriteScheme::ForegroundMirror => &FOREGROUND,
        WriteScheme::BackgroundMirror => &BACKGROUND,
        WriteScheme::Parity => &PARITY,
    }
}

fn runs_to_writes(ops: &OpBuilder<'_>, client: usize, runs: &[Run], ack: bool) -> Vec<Plan> {
    runs.iter().map(|r| ops.write_run(client, r.disk, r.start, r.len(), ack)).collect()
}

/// Plain striping: every block to its data disk, acked in parallel.
pub struct PlainDriver;

impl SchemeDriver for PlainDriver {
    fn scheme(&self) -> WriteScheme {
        WriteScheme::None
    }

    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let mut placements = Vec::with_capacity(nblocks as usize);
        for lb in lb0..lb0 + nblocks {
            let a = ctx.layout.locate_data(lb);
            if ctx.faults.contains(a.disk) {
                return Err(IoError::DataLoss { lb });
            }
            placements.push((lb, a));
        }
        for &(lb, a) in &placements {
            ctx.plane.write(a.disk, a.block, ctx.slice(data, lb0, lb))?;
        }
        let ops = ctx.ops();
        let plans = runs_to_writes(&ops, client, &merge_runs(placements), true);
        Ok(par(plans))
    }
}

/// Mirrored writes: foreground both-copies (RAID-10, chained), or RAID-x
/// OSM write-behind when `write_behind` and the config's
/// `background_mirroring` both hold.
pub struct MirrorDriver {
    /// Whether images may defer to the background image queue.
    pub write_behind: bool,
}

impl SchemeDriver for MirrorDriver {
    fn scheme(&self) -> WriteScheme {
        if self.write_behind {
            WriteScheme::BackgroundMirror
        } else {
            WriteScheme::ForegroundMirror
        }
    }

    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let deferred_images = self.write_behind && ctx.cfg.background_mirroring;
        let mut fg = Vec::new(); // foreground placements
        let mut bg = Vec::new(); // deferred image placements
        for lb in lb0..lb0 + nblocks {
            let d = ctx.layout.locate_data(lb);
            let images = ctx.layout.locate_images(lb);
            let d_ok = !ctx.faults.contains(d.disk);
            let mut healthy_images: Vec<BlockAddr> = Vec::with_capacity(images.len());
            for a in images {
                if ctx.faults.contains(a.disk) {
                    // Degraded write: the surviving copies go down now;
                    // the skipped one is parked for resync/rebuild.
                    ctx.park(a.disk, lb);
                } else {
                    healthy_images.push(a);
                }
            }
            if !d_ok && healthy_images.is_empty() {
                return Err(IoError::DataLoss { lb });
            }
            if d_ok {
                fg.push((lb, d));
            } else {
                ctx.park(d.disk, lb);
            }
            for img in healthy_images {
                // With the primary gone the image is the only durable copy,
                // so it must be written before the ack.
                if deferred_images && d_ok {
                    bg.push((lb, img));
                } else {
                    fg.push((lb, img));
                }
            }
        }
        for &(lb, a) in fg.iter().chain(bg.iter()) {
            ctx.plane.write(a.disk, a.block, ctx.slice(data, lb0, lb))?;
        }
        // Write-behind with group clustering: buffer each deferred image
        // under its mirroring group; a group that fills flushes as one
        // long sequential write (the OSM mechanism that removes per-write
        // mirroring cost). Partial groups stay buffered until they fill,
        // the backlog bound sheds them, or `flush_images` is called.
        let mut ready: Vec<PendingImage> = Vec::new();
        for (lb, img) in bg {
            let group = ctx.layout.image_group_key(lb);
            ready.extend(ctx.images.push(PendingImage { client, lb, addr: img }, group));
        }
        let ops = ctx.ops();
        let fg_plans = runs_to_writes(&ops, client, &merge_runs(fg), true);
        let mut chain = vec![par(fg_plans)];
        if !ready.is_empty() {
            if let Some(out) = ctx.surrendered.as_deref_mut() {
                out.extend(ready.iter().map(|p| p.lb));
            }
            chain.push(background(par(ImageQueue::flush_plans(&ops, ready))));
        }
        // Bounded write-behind: whatever still exceeds the backlog cap is
        // this request's debt — it flushes on the foreground path, inside
        // the ack, as a partial clustered flush.
        if let Some(bound) = ctx.cfg.max_image_backlog {
            let overflow = ctx.images.drain_overflow(bound);
            if !overflow.is_empty() {
                if let Some(out) = ctx.surrendered.as_deref_mut() {
                    out.extend(overflow.iter().map(|p| p.lb));
                }
                chain.push(par(ImageQueue::flush_plans(&ops, overflow)));
            }
        }
        Ok(seq(chain))
    }
}

/// RAID-5 parity writes: full-stripe streaming or the four-op
/// read-modify-write, with degraded reconstruct-write paths.
pub struct ParityDriver;

impl SchemeDriver for ParityDriver {
    fn scheme(&self) -> WriteScheme {
        WriteScheme::Parity
    }

    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let bs = ctx.block_size();
        let width = ctx.layout.stripe_width() as u64;
        // A block is unstorable only if both its data disk and its
        // stripe's parity disk are gone.
        for lb in lb0..lb0 + nblocks {
            let d = ctx.layout.locate_data(lb);
            let p = ctx.layout.locate_parity(lb).expect("parity layout"); // lint-ok(no-unwrap): parity drivers only run on parity layouts
            if ctx.faults.contains(d.disk) && ctx.faults.contains(p.disk) {
                return Err(IoError::DataLoss { lb });
            }
        }

        let mut full_data = Vec::new(); // data placements of full stripes
        let mut parity_writes = Vec::new(); // (stripe, parity addr)
        let mut rmw_plans = Vec::new();
        // Degraded reconstruct-writes: (lost block, surviving sibling
        // addrs to read, parity addr to write).
        let mut reconstruct_writes: Vec<(u64, Vec<BlockAddr>, BlockAddr)> = Vec::new();
        // Degraded data-only writes (parity disk dead).
        let mut bare_data = Vec::new();
        let mut xor_bytes = 0u64;

        let s_first = lb0 / width;
        let s_last = (lb0 + nblocks - 1) / width;
        for s in s_first..=s_last {
            let members = ctx.layout.stripe_blocks(s);
            let covered = members.iter().all(|&m| (lb0..lb0 + nblocks).contains(&m));
            if covered && members.len() == width as usize {
                // Full-stripe write: parity from the new data alone. A
                // dead data disk's block is represented by parity only;
                // a dead parity disk simply goes unmaintained.
                let mut parity = vec![0u8; bs];
                for &m in &members {
                    let slice = ctx.slice(data, lb0, m);
                    xor_into(&mut parity, slice);
                    let a = ctx.layout.locate_data(m);
                    if !ctx.faults.contains(a.disk) {
                        ctx.plane.write(a.disk, a.block, slice)?;
                        full_data.push((m, a));
                    } else {
                        ctx.park(a.disk, m);
                    }
                }
                let p = ctx.layout.locate_parity(members[0]).expect("parity"); // lint-ok(no-unwrap): parity drivers only run on parity layouts
                if !ctx.faults.contains(p.disk) {
                    ctx.plane.write(p.disk, p.block, &parity)?;
                    parity_writes.push((s, p));
                } else {
                    ctx.park(p.disk, members[0]);
                }
                xor_bytes += width * bs as u64;
            } else {
                // Partial stripe: per touched block.
                for &m in &members {
                    if !(lb0..lb0 + nblocks).contains(&m) {
                        continue;
                    }
                    let a = ctx.layout.locate_data(m);
                    let p = ctx.layout.locate_parity(m).expect("parity"); // lint-ok(no-unwrap): parity drivers only run on parity layouts
                    let d_ok = !ctx.faults.contains(a.disk);
                    let p_ok = !ctx.faults.contains(p.disk);
                    let newd = ctx.slice(data, lb0, m).to_vec();
                    match (d_ok, p_ok) {
                        (true, true) => {
                            // Healthy read-modify-write.
                            let old = ctx.plane.read_owned(a.disk, a.block)?;
                            let mut new_parity = ctx.plane.read_owned(p.disk, p.block)?;
                            xor_into(&mut new_parity, &old);
                            xor_into(&mut new_parity, &newd);
                            ctx.plane.write(a.disk, a.block, &newd)?;
                            ctx.plane.write(p.disk, p.block, &new_parity)?;
                            rmw_plans.push((m, a, p));
                        }
                        (true, false) => {
                            // Parity disk dead: data write only; park the
                            // stale parity for recomputation on recovery.
                            ctx.plane.write(a.disk, a.block, &newd)?;
                            ctx.park(p.disk, m);
                            bare_data.push((m, a));
                        }
                        (false, true) => {
                            // Reconstruct-write: the new block exists only
                            // through parity = new XOR surviving siblings.
                            ctx.park(a.disk, m);
                            let mut parity = newd;
                            let mut sibs = Vec::new();
                            for sib in ctx.layout.stripe_blocks(s) {
                                if sib == m {
                                    continue;
                                }
                                let sa = ctx.layout.locate_data(sib);
                                let bytes = ctx.plane.read_owned(sa.disk, sa.block)?;
                                xor_into(&mut parity, &bytes);
                                sibs.push(sa);
                            }
                            ctx.plane.write(p.disk, p.block, &parity)?;
                            reconstruct_writes.push((m, sibs, p));
                        }
                        (false, false) => unreachable!("checked above"),
                    }
                }
            }
        }

        let ops = ctx.ops();
        let mut branches = Vec::new();
        if !full_data.is_empty() {
            let data_plans = runs_to_writes(&ops, client, &merge_runs(full_data), true);
            let parity_plans: Vec<Plan> = parity_writes
                .iter()
                .map(|&(_, p)| ops.write_run(client, p.disk, p.block, 1, true))
                .collect();
            branches.push(seq(vec![
                ops.xor(client, xor_bytes),
                par(data_plans.into_iter().chain(parity_plans).collect()),
            ]));
        }
        for (_, a, p) in &rmw_plans {
            // The four-op small-write cycle: two reads, XOR, two writes.
            branches.push(seq(vec![
                par(vec![
                    ops.read_run(client, a.disk, a.block, 1),
                    ops.read_run(client, p.disk, p.block, 1),
                ]),
                ops.xor(client, 3 * bs as u64),
                par(vec![
                    ops.write_run(client, a.disk, a.block, 1, true),
                    ops.write_run(client, p.disk, p.block, 1, true),
                ]),
            ]));
        }
        for run in merge_runs(bare_data) {
            branches.push(ops.write_run(client, run.disk, run.start, run.len(), true));
        }
        for (_, sibs, p) in &reconstruct_writes {
            // Degraded write: read every surviving sibling, XOR with the
            // new data, write the parity block.
            let reads: Vec<Plan> =
                sibs.iter().map(|a| ops.read_run(client, a.disk, a.block, 1)).collect();
            branches.push(seq(vec![
                par(reads),
                ops.xor(client, width * bs as u64),
                ops.write_run(client, p.disk, p.block, 1, true),
            ]));
        }
        Ok(par(branches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_scheme() {
        for scheme in [
            WriteScheme::None,
            WriteScheme::ForegroundMirror,
            WriteScheme::BackgroundMirror,
            WriteScheme::Parity,
        ] {
            assert_eq!(driver_for(scheme.clone()).scheme(), scheme);
        }
    }
}
