//! Scheme-driver layer of the CDD pipeline: one driver per
//! [`WriteScheme`], behind the [`SchemeDriver`] trait.
//!
//! The front end admits and locks a request; the matching driver then
//! owns the whole write policy — placement, fault handling, functional
//! data movement and the timing plan:
//!
//! * [`PlainDriver`] (`WriteScheme::None`) — plain striping.
//! * [`MirrorDriver`] (`ForegroundMirror` / `BackgroundMirror`) — both
//!   copies foreground (RAID-10, chained declustering), or RAID-x OSM
//!   write-behind: the ack follows the data writes and images buffer in
//!   the [`ImageQueue`], flushing per mirroring group as long detached
//!   sequential runs. With [`CddConfig::max_image_backlog`] set, a write
//!   that overfills the queue pays the overflow as a foreground partial
//!   clustered flush (bounded backpressure).
//! * [`crate::parity::ParityDriver`] (`Parity`) — RAID-5: full stripes compute parity
//!   client-side and write `n` streams; partial stripes pay the
//!   four-operation read-modify-write (the small-write problem).
//!
//! Drivers are stateless: all array state they touch is borrowed through
//! [`WriteCtx`], so the dispatch is a table lookup ([`driver_for`]) and
//! new layouts add a driver without touching the orchestrator.

use std::collections::{BTreeMap, BTreeSet};

use cluster::{Cluster, DataPlane};
use raidx_core::{BlockAddr, FaultSet, Layout, WriteScheme};
use sim_core::plan::{background, par, seq};
use sim_core::Plan;

use crate::config::CddConfig;
use crate::error::IoError;
use crate::image_queue::{ImageQueue, PendingImage};
use crate::ops::OpBuilder;
use crate::placer::Placer;
use crate::runs::{merge_runs, Run};

/// Everything a scheme driver may touch, borrowed field-by-field from the
/// [`crate::IoSystem`] for the duration of one admitted write.
///
/// All placement arithmetic inside a driver happens in logical *slot*
/// space; the context's [`WriteCtx::write_block`], [`WriteCtx::read_block`]
/// and [`WriteCtx::phys`] helpers translate to physical disks through the
/// epoch-versioned placer at the plane boundary (the identity on a
/// never-reconfigured array).
pub struct WriteCtx<'a> {
    /// The layout placing blocks.
    pub layout: &'a dyn Layout,
    /// The functional plane holding the bytes.
    pub plane: &'a mut DataPlane,
    /// Epoch-versioned slot→physical binding; writes through it supersede
    /// any in-flight migration of the written blocks.
    pub placer: &'a mut Placer,
    /// Currently failed disks (slot view of the client's fault set).
    pub faults: &'a FaultSet,
    /// Cluster resource handles for plan building.
    pub cluster: &'a Cluster,
    /// Protocol cost parameters and policies.
    pub cfg: &'a CddConfig,
    /// The OSM write-behind queue (mirror drivers only).
    pub images: &'a mut ImageQueue,
    /// Degraded-write ledger: per unavailable disk, the logical blocks
    /// whose copy on that disk was *skipped* by a driver. Transient
    /// recovery resyncs exactly these; permanent rebuild clears them
    /// wholesale.
    pub parked: &'a mut BTreeMap<usize, BTreeSet<u64>>,
    /// When tracing, the logical blocks whose images this write flushed
    /// out of the [`ImageQueue`] (full groups and backlog overflow).
    /// `None` when the orchestrator has no tracer installed.
    pub surrendered: Option<&'a mut Vec<u64>>,
}

impl<'a> WriteCtx<'a> {
    /// Plan builder over this context's cluster. The returned builder
    /// borrows the cluster and config directly (not the context), so it
    /// coexists with later mutation of the plane or image queue.
    pub fn ops(&self) -> OpBuilder<'a> {
        OpBuilder { cluster: self.cluster, cfg: self.cfg }
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.cluster.cfg.block_size as usize
    }

    /// Record that `lb`'s copy on unavailable slot `disk` was skipped by
    /// a degraded write and must be restored when the disk comes back (or
    /// is rebuilt). The ledger is keyed by *physical* disk, so the entry
    /// follows the slot's current home.
    pub fn park(&mut self, disk: usize, lb: u64) {
        let phys = self.placer.phys(disk);
        self.parked.entry(phys).or_default().insert(lb);
    }

    /// Physical disk currently serving slot `slot`.
    pub fn phys(&self, slot: usize) -> usize {
        self.placer.phys(slot)
    }

    /// Write one block at slot-space address `a`: lands on the slot's
    /// current home and supersedes any pending migration of the block.
    pub fn write_block(&mut self, a: BlockAddr, bytes: &[u8]) -> Result<(), IoError> {
        let h = self.placer.write_home(a);
        self.plane.write(h.disk, h.block, bytes)?;
        Ok(())
    }

    /// Read one block at slot-space address `a`, from wherever it
    /// currently lives (the old home while pending migration).
    pub fn read_block(&mut self, a: BlockAddr) -> Result<Vec<u8>, IoError> {
        let h = self.placer.read_home(a);
        Ok(self.plane.read_owned(h.disk, h.block)?)
    }

    /// The block of `data` backing logical block `lb` of a request
    /// starting at `lb0`.
    pub fn slice<'d>(&self, data: &'d [u8], lb0: u64, lb: u64) -> &'d [u8] {
        let bs = self.block_size();
        let off = ((lb - lb0) as usize) * bs;
        &data[off..off + bs]
    }
}

/// One write policy of the single I/O space.
pub trait SchemeDriver: Sync {
    /// The scheme this driver implements (dispatch sanity / reports).
    fn scheme(&self) -> WriteScheme;

    /// Execute an admitted, locked write: move the bytes on the
    /// functional plane now and return the timing plan.
    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError>;
}

/// The driver implementing `scheme`.
pub fn driver_for(scheme: WriteScheme) -> &'static dyn SchemeDriver {
    use crate::parity::ParityDriver;
    static PLAIN: PlainDriver = PlainDriver;
    static FOREGROUND: MirrorDriver = MirrorDriver { write_behind: false };
    static BACKGROUND: MirrorDriver = MirrorDriver { write_behind: true };
    static PARITY: ParityDriver = ParityDriver;
    match scheme {
        WriteScheme::None => &PLAIN,
        WriteScheme::ForegroundMirror => &FOREGROUND,
        WriteScheme::BackgroundMirror => &BACKGROUND,
        WriteScheme::Parity => &PARITY,
    }
}

pub(crate) fn runs_to_writes(
    ops: &OpBuilder<'_>,
    placer: &Placer,
    client: usize,
    runs: &[Run],
    ack: bool,
) -> Vec<Plan> {
    runs.iter().map(|r| ops.write_run(client, placer.phys(r.disk), r.start, r.len(), ack)).collect()
}

/// Plain striping: every block to its data disk, acked in parallel.
pub struct PlainDriver;

impl SchemeDriver for PlainDriver {
    fn scheme(&self) -> WriteScheme {
        WriteScheme::None
    }

    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let mut placements = Vec::with_capacity(nblocks as usize);
        for lb in lb0..lb0 + nblocks {
            let a = ctx.layout.locate_data(lb);
            if ctx.faults.contains(a.disk) {
                return Err(IoError::DataLoss { lb });
            }
            placements.push((lb, a));
        }
        for &(lb, a) in &placements {
            ctx.write_block(a, ctx.slice(data, lb0, lb))?;
        }
        let ops = ctx.ops();
        let plans = runs_to_writes(&ops, ctx.placer, client, &merge_runs(placements), true);
        Ok(par(plans))
    }
}

/// Mirrored writes: foreground both-copies (RAID-10, chained), or RAID-x
/// OSM write-behind when `write_behind` and the config's
/// `background_mirroring` both hold.
pub struct MirrorDriver {
    /// Whether images may defer to the background image queue.
    pub write_behind: bool,
}

impl SchemeDriver for MirrorDriver {
    fn scheme(&self) -> WriteScheme {
        if self.write_behind {
            WriteScheme::BackgroundMirror
        } else {
            WriteScheme::ForegroundMirror
        }
    }

    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let deferred_images = self.write_behind && ctx.cfg.background_mirroring;
        let mut fg = Vec::new(); // foreground placements
        let mut bg = Vec::new(); // deferred image placements
        for lb in lb0..lb0 + nblocks {
            let d = ctx.layout.locate_data(lb);
            let images = ctx.layout.locate_images(lb);
            let d_ok = !ctx.faults.contains(d.disk);
            let mut healthy_images: Vec<BlockAddr> = Vec::with_capacity(images.len());
            for a in images {
                if ctx.faults.contains(a.disk) {
                    // Degraded write: the surviving copies go down now;
                    // the skipped one is parked for resync/rebuild.
                    ctx.park(a.disk, lb);
                } else {
                    healthy_images.push(a);
                }
            }
            if !d_ok && healthy_images.is_empty() {
                return Err(IoError::DataLoss { lb });
            }
            if d_ok {
                fg.push((lb, d));
            } else {
                ctx.park(d.disk, lb);
            }
            for img in healthy_images {
                // With the primary gone the image is the only durable copy,
                // so it must be written before the ack.
                if deferred_images && d_ok {
                    bg.push((lb, img));
                } else {
                    fg.push((lb, img));
                }
            }
        }
        let all: Vec<(u64, BlockAddr)> = fg.iter().chain(bg.iter()).copied().collect();
        for (lb, a) in all {
            ctx.write_block(a, ctx.slice(data, lb0, lb))?;
        }
        // Write-behind with group clustering: buffer each deferred image
        // under its mirroring group; a group that fills flushes as one
        // long sequential write (the OSM mechanism that removes per-write
        // mirroring cost). Partial groups stay buffered until they fill,
        // the backlog bound sheds them, or `flush_images` is called.
        let mut ready: Vec<PendingImage> = Vec::new();
        for (lb, img) in bg {
            let group = ctx.layout.image_group_key(lb);
            // The queue holds physical addresses, so disk-level drains and
            // flush plans match the fault state and the current epoch.
            let addr = BlockAddr::new(ctx.phys(img.disk), img.block);
            ready.extend(ctx.images.push(PendingImage { client, lb, addr }, group));
        }
        let ops = ctx.ops();
        let fg_plans = runs_to_writes(&ops, ctx.placer, client, &merge_runs(fg), true);
        let mut chain = vec![par(fg_plans)];
        if !ready.is_empty() {
            if let Some(out) = ctx.surrendered.as_deref_mut() {
                out.extend(ready.iter().map(|p| p.lb));
            }
            chain.push(background(par(ImageQueue::flush_plans(&ops, ready))));
        }
        // Bounded write-behind: whatever still exceeds the backlog cap is
        // this request's debt — it flushes on the foreground path, inside
        // the ack, as a partial clustered flush.
        if let Some(bound) = ctx.cfg.max_image_backlog {
            let overflow = ctx.images.drain_overflow(bound);
            if !overflow.is_empty() {
                if let Some(out) = ctx.surrendered.as_deref_mut() {
                    out.extend(overflow.iter().map(|p| p.lb));
                }
                chain.push(par(ImageQueue::flush_plans(&ops, overflow)));
            }
        }
        Ok(seq(chain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_scheme() {
        for scheme in [
            WriteScheme::None,
            WriteScheme::ForegroundMirror,
            WriteScheme::BackgroundMirror,
            WriteScheme::Parity,
        ] {
            assert_eq!(driver_for(scheme.clone()).scheme(), scheme);
        }
    }
}
