//! Array maintenance: redundancy scrub, disk rebuild and transient
//! recovery.
//!
//! All of it walks the written region of the array from outside the
//! request pipeline — scrub audits the functional plane's redundancy
//! relations, rebuild restores a replaced disk from surviving copies,
//! and the transient path ([`IoSystem::recover_disk_transient`] /
//! [`IoSystem::resync_parked`]) restores only the blocks degraded writes
//! *parked* while a disk was offline or unreachable — the paper's
//! Section 6 distinction: a transient failure recovers from local state
//! in seconds, a permanent one pays a full rebuild.

use std::collections::BTreeSet;

use cluster::xor_into;
use raidx_core::fault::{plan_rebuild, RebuildSource};
use raidx_core::{BlockAddr, FaultSet, ReadSource};
use sim_core::plan::{par, seq};
use sim_core::Plan;

use crate::error::IoError;
use crate::system::IoSystem;

/// Outcome of one (possibly partial) rebuild attempt.
#[derive(Debug)]
pub struct RebuildOutcome {
    /// Timing plan of the attempt's actual I/O.
    pub plan: Plan,
    /// Blocks written by this attempt.
    pub restored: usize,
    /// Blocks found already correct on the target (a resumed rebuild
    /// re-verifies instead of rewriting — the idempotence guarantee).
    pub skipped: usize,
    /// Whether every planned step has now run; only then does the disk
    /// leave the fault set.
    pub finished: bool,
}

impl RebuildOutcome {
    /// Blocks this attempt accounted for (written + verified-present).
    /// Summing `restored` across a crash/restart sequence never exceeds
    /// the plan size: a block is restored once, then only skipped.
    pub fn rebuilt(&self) -> usize {
        self.restored + self.skipped
    }
}

/// How one resynced block was obtained (plan building).
enum ResyncAction {
    /// Straight copy from a surviving replica.
    Copy {
        src: BlockAddr,
        dst: BlockAddr,
    },
    Xor {
        inputs: Vec<BlockAddr>,
        dst: BlockAddr,
    },
}

impl IoSystem {
    /// Scrub: audit that every written block's redundancy is consistent
    /// on the functional plane — mirror images byte-identical to their
    /// data, parity blocks equal to the XOR of their stripe. Returns the
    /// number of redundancy relations audited; any inconsistency is an
    /// error naming the offending block. Copies on failed or offline
    /// disks are skipped, as are copies *parked* by degraded writes —
    /// those are known-stale until resync, not corruption. (The real CDD
    /// would run this in idle time; here it is the test suite's
    /// strongest invariant check.)
    pub fn scrub(&mut self) -> Result<u64, IoError> {
        let bs = self.block_size() as usize;
        let mut audited = 0u64;
        let width = self.layout.stripe_width() as u64;
        let storage = self.storage_faults();
        let parked = self.parked.clone();
        let is_parked = |disk: usize, lb: u64| parked.get(&disk).is_some_and(|s| s.contains(&lb));
        for lb in 0..self.high_water {
            let d = self.layout.locate_data(lb);
            if storage.contains(d.disk) || is_parked(d.disk, lb) {
                continue;
            }
            let data = self.plane.read_owned(d.disk, d.block)?;
            // Mirror images must match exactly.
            for img in self.layout.locate_images(lb) {
                if storage.contains(img.disk) || is_parked(img.disk, lb) {
                    continue;
                }
                let copy = self.plane.read_owned(img.disk, img.block)?;
                if copy != data {
                    return Err(IoError::DataLoss { lb });
                }
                audited += 1;
            }
            // Parity must equal the XOR of the whole stripe (checked once
            // per stripe, at its first member).
            if let Some(p) = self.layout.locate_parity(lb) {
                let (s, pos) = self.layout.stripe_of(lb);
                if pos == 0 && !storage.contains(p.disk) {
                    let mut acc = vec![0u8; bs];
                    let mut complete = true;
                    for member in self.layout.stripe_blocks(s) {
                        let a = self.layout.locate_data(member);
                        if storage.contains(a.disk)
                            || is_parked(a.disk, member)
                            || is_parked(p.disk, member)
                        {
                            complete = false;
                            break;
                        }
                        let bytes = self.plane.read_owned(a.disk, a.block)?;
                        xor_into(&mut acc, &bytes);
                    }
                    if complete {
                        let parity = self.plane.read_owned(p.disk, p.block)?;
                        if parity != acc {
                            return Err(IoError::DataLoss { lb: s * width });
                        }
                        audited += 1;
                    }
                }
            }
        }
        Ok(audited)
    }

    /// Replace `disk` with a blank spare and restore every block it held
    /// (primaries, images and parity), driven from node `client`.
    /// Returns the timing plan and the number of blocks accounted for.
    pub fn rebuild_disk(&mut self, client: usize, disk: usize) -> Result<(Plan, usize), IoError> {
        let outcome = self.rebuild_disk_resumable(client, disk, None)?;
        debug_assert!(outcome.finished);
        let rebuilt = outcome.rebuilt();
        Ok((outcome.plan, rebuilt))
    }

    /// Rebuild with an optional step budget, safe to re-run after a
    /// power failure mid-rebuild.
    ///
    /// The target plane is wiped only when the media is actually failed;
    /// on a restart (target already replaced, partially restored) the
    /// surviving restored blocks are detected and *skipped*, so the
    /// rebuild is idempotent and `restored` summed across attempts never
    /// double-counts a block. The disk rejoins the array — and its
    /// parked-block ledger clears — only when the final step completes.
    pub fn rebuild_disk_resumable(
        &mut self,
        client: usize,
        disk: usize,
        step_limit: Option<usize>,
    ) -> Result<RebuildOutcome, IoError> {
        assert!(self.faults.contains(disk), "rebuilding a healthy disk");
        let mut remaining = self.storage_faults();
        remaining.remove(disk);
        let steps = plan_rebuild(self.layout.as_ref(), disk, &remaining, self.high_water)
            .map_err(|lost| IoError::DataLoss { lb: lost[0] })?;
        if self.plane.is_failed(disk) {
            self.plane.replace(disk);
        }
        let limit = step_limit.unwrap_or(usize::MAX).min(steps.len());
        let sources = self.storage_faults(); // still contains `disk`

        let bs = self.block_size() as usize;
        let mut restored = 0usize;
        let mut skipped = 0usize;
        let mut wrote = Vec::with_capacity(limit);
        // Split borrows: functional restoration first, then the plans.
        for step in steps.iter().take(limit) {
            let bytes = match &step.source {
                RebuildSource::Copy(lb) => {
                    // Reconstruct/Lost: fault set changed under a planned Copy.
                    let src = match self.layout.read_source(*lb, &sources) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        ReadSource::Reconstruct { .. } | ReadSource::Lost => {
                            return Err(IoError::DataLoss { lb: *lb })
                        }
                    };
                    self.plane.read_owned(src.disk, src.block)?
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut acc = vec![0u8; bs];
                    for (_, a) in siblings {
                        let b = self.plane.read_owned(a.disk, a.block)?;
                        xor_into(&mut acc, &b);
                    }
                    if let Some(p) = parity {
                        let b = self.plane.read_owned(p.disk, p.block)?;
                        xor_into(&mut acc, &b);
                    }
                    acc
                }
            };
            let existing = self.plane.read_owned(step.target.disk, step.target.block)?;
            if existing == bytes {
                skipped += 1;
                wrote.push(false);
            } else {
                self.plane.write(step.target.disk, step.target.block, &bytes)?;
                restored += 1;
                wrote.push(true);
            }
        }
        let ops = self.ops();
        let mut step_plans = Vec::with_capacity(restored);
        for (step, wrote) in steps.iter().take(limit).zip(&wrote) {
            if !wrote {
                continue; // verified in place: no rebuild I/O to charge
            }
            let write = ops.write_run(client, step.target.disk, step.target.block, 1, false);
            let plan = match &step.source {
                RebuildSource::Copy(lb) => {
                    let src = match self.layout.read_source(*lb, &sources) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        ReadSource::Reconstruct { .. } | ReadSource::Lost => {
                            unreachable!("restoration pass above already resolved this source")
                        }
                    };
                    seq(vec![ops.read_run(client, src.disk, src.block, 1), write])
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut reads: Vec<Plan> = siblings
                        .iter()
                        .map(|(_, a)| ops.read_run(client, a.disk, a.block, 1))
                        .collect();
                    if let Some(p) = parity {
                        reads.push(ops.read_run(client, p.disk, p.block, 1));
                    }
                    let n = reads.len() as u64 + 1;
                    seq(vec![par(reads), ops.xor(client, n * bs as u64), write])
                }
            };
            step_plans.push(plan);
        }
        let finished = limit == steps.len();
        if finished {
            self.faults.remove(disk);
            self.parked.remove(&disk);
        }

        // Pace the rebuild in batches (a real rebuilder bounds outstanding
        // I/O rather than flooding every queue at once).
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        let plan = if batched.is_empty() { Plan::Noop } else { seq(batched) };
        Ok(RebuildOutcome { plan, restored, skipped, finished })
    }

    /// Bring a transiently-offline disk back: its contents survived, so
    /// recovery only resyncs the blocks degraded writes parked while it
    /// was away — the paper's cheap transient path, in contrast to the
    /// full [`IoSystem::rebuild_disk`] a permanent failure pays.
    pub fn recover_disk_transient(
        &mut self,
        client: usize,
        disk: usize,
    ) -> Result<(Plan, usize), IoError> {
        assert!(self.offline.contains(disk), "disk is not transiently offline");
        self.plane.set_offline(disk, false);
        self.offline.remove(disk);
        self.resync_parked(client, disk)
    }

    /// Restore every copy parked against online `disk` from surviving
    /// replicas (after a transient outage or a healed partition).
    /// Returns the timing plan and the number of blocks restored.
    pub fn resync_parked(&mut self, client: usize, disk: usize) -> Result<(Plan, usize), IoError> {
        assert!(
            !self.faults.contains(disk) && !self.offline.contains(disk),
            "resync target must be online"
        );
        let lbs: Vec<u64> =
            self.parked.remove(&disk).map(|s| s.into_iter().collect()).unwrap_or_default();
        if lbs.is_empty() {
            return Ok((Plan::Noop, 0));
        }
        // Sources must avoid media faults *and* the target's stale copies.
        let mut avoid = self.storage_faults();
        avoid.insert(disk);

        let mut actions: Vec<ResyncAction> = Vec::new();
        let mut parity_stripes: BTreeSet<u64> = BTreeSet::new();
        for &lb in &lbs {
            let d = self.layout.locate_data(lb);
            if d.disk == disk {
                let (bytes, inputs) = self.fetch_block(lb, &avoid)?;
                self.plane.write(d.disk, d.block, &bytes)?;
                actions.push(match inputs.as_slice() {
                    [src] => ResyncAction::Copy { src: *src, dst: d },
                    _ => ResyncAction::Xor { inputs, dst: d },
                });
            }
            for img in self.layout.locate_images(lb) {
                if img.disk != disk {
                    continue;
                }
                let (bytes, inputs) = self.fetch_block(lb, &avoid)?;
                self.plane.write(img.disk, img.block, &bytes)?;
                actions.push(match inputs.as_slice() {
                    [src] => ResyncAction::Copy { src: *src, dst: img },
                    _ => ResyncAction::Xor { inputs, dst: img },
                });
            }
            if let Some(p) = self.layout.locate_parity(lb) {
                let (s, _) = self.layout.stripe_of(lb);
                if p.disk == disk && parity_stripes.insert(s) {
                    // Recompute the stripe's parity from its members.
                    let bs = self.block_size() as usize;
                    let mut acc = vec![0u8; bs];
                    let mut inputs = Vec::new();
                    for member in self.layout.stripe_blocks(s) {
                        let (bytes, ins) = self.fetch_block(member, &avoid)?;
                        xor_into(&mut acc, &bytes);
                        inputs.extend(ins);
                    }
                    self.plane.write(p.disk, p.block, &acc)?;
                    actions.push(ResyncAction::Xor { inputs, dst: p });
                }
            }
        }

        let bs = self.block_size() as usize;
        let ops = self.ops();
        let step_plans: Vec<Plan> = actions
            .iter()
            .map(|a| match a {
                ResyncAction::Copy { src, dst } => seq(vec![
                    ops.read_run(client, src.disk, src.block, 1),
                    ops.write_run(client, dst.disk, dst.block, 1, false),
                ]),
                ResyncAction::Xor { inputs, dst } => {
                    let reads: Vec<Plan> =
                        inputs.iter().map(|a| ops.read_run(client, a.disk, a.block, 1)).collect();
                    let n = reads.len() as u64 + 1;
                    seq(vec![
                        par(reads),
                        ops.xor(client, n * bs as u64),
                        ops.write_run(client, dst.disk, dst.block, 1, false),
                    ])
                }
            })
            .collect();
        let restored = step_plans.len();
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        let plan = if batched.is_empty() { Plan::Noop } else { seq(batched) };
        Ok((plan, restored))
    }

    /// Materialize logical block `lb` from the best source outside
    /// `avoid`, returning the bytes and the physical blocks read.
    fn fetch_block(
        &mut self,
        lb: u64,
        avoid: &FaultSet,
    ) -> Result<(Vec<u8>, Vec<BlockAddr>), IoError> {
        match self.layout.read_source(lb, avoid) {
            ReadSource::Primary(a) | ReadSource::Image(a) => {
                Ok((self.plane.read_owned(a.disk, a.block)?, vec![a]))
            }
            ReadSource::Reconstruct { siblings, parity } => {
                let mut acc = self.plane.read_owned(parity.disk, parity.block)?;
                let mut inputs = vec![parity];
                for (_, a) in siblings {
                    let b = self.plane.read_owned(a.disk, a.block)?;
                    xor_into(&mut acc, &b);
                    inputs.push(a);
                }
                Ok((acc, inputs))
            }
            ReadSource::Lost => Err(IoError::DataLoss { lb }),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testkit::shape;
    use raidx_core::Arch;

    /// Satellite: a power failure mid-rebuild must be recoverable by
    /// simply re-planning — already-restored blocks are detected and
    /// skipped, nothing is double-counted, and the array ends clean.
    #[test]
    fn crash_mid_rebuild_resumes_idempotently() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 32u64;
        let data: Vec<u8> =
            (0..nblocks as usize * bs).map(|i| ((i * 7 + 3) % 253) as u8 + 1).collect();
        sys.write(0, 0, &data).expect("seed");
        sys.fail_disk(2);

        // First attempt dies after five steps ("power failure").
        let a = sys.rebuild_disk_resumable(0, 2, Some(5)).expect("partial rebuild");
        assert!(!a.finished, "five steps must not finish the rebuild");
        assert_eq!(a.restored, 5);
        assert_eq!(a.skipped, 0, "nothing was restored before the crash");
        assert!(sys.faults().contains(2), "unfinished rebuild must keep the fault");

        // Restart: re-plan from scratch. The five restored blocks are
        // recognised as already correct and skipped, the rest restored.
        let b = sys.rebuild_disk_resumable(0, 2, None).expect("resumed rebuild");
        assert!(b.finished);
        assert_eq!(b.skipped, 5, "restart must skip exactly the pre-crash progress");
        assert_eq!(
            a.restored + b.restored,
            b.restored + b.skipped,
            "a block was restored twice across the crash"
        );
        assert!(!sys.faults().contains(2));
        engine.spawn_job("rebuild", b.plan);
        engine.run().expect("rebuild timing");

        let (got, _) = sys.read(1, 0, nblocks).expect("post-rebuild read");
        assert_eq!(got, data);
        assert!(sys.scrub().expect("scrub") > 0);
    }

    /// A transient outage keeps the disk's contents: recovery resyncs
    /// only the blocks that went stale (parked) while it was offline.
    #[test]
    fn transient_recovery_resyncs_only_parked_blocks() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 24u64;
        let before: Vec<u8> = vec![0x42; nblocks as usize * bs];
        sys.write(0, 0, &before).expect("healthy seed");
        sys.fail_disk_transient(1);

        // Degraded overwrite of a prefix: copies on disk 1 get parked.
        let after: Vec<u8> = vec![0x91; 8 * bs];
        sys.write(0, 0, &after).expect("degraded write");
        let parked = sys.parked_blocks(1);
        assert!(parked > 0, "degraded writes must park the offline copies");

        // Reads already see the new bytes via the surviving copies.
        let (got, _) = sys.read(2, 0, 8).expect("degraded read");
        assert_eq!(got, after);

        let (plan, resynced) = sys.recover_disk_transient(0, 1).expect("recovery");
        assert_eq!(resynced, parked, "resync must cover exactly the parked blocks");
        assert_eq!(sys.parked_blocks(1), 0);
        assert!(sys.offline_disks().is_empty());
        engine.spawn_job("resync", plan);
        engine.run().expect("resync timing");

        let (got, _) = sys.read(2, 0, nblocks).expect("post-recovery read");
        assert_eq!(&got[..8 * bs], &after[..]);
        assert_eq!(&got[8 * bs..], &before[8 * bs..]);
        assert!(sys.scrub().expect("scrub") > 0);
    }
}
