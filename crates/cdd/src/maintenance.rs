//! Array maintenance: redundancy scrub and disk rebuild.
//!
//! Both walk the written region of the array from outside the request
//! pipeline — scrub audits the functional plane's redundancy relations,
//! rebuild restores a replaced disk from surviving copies — so they live
//! apart from the per-request layers in [`crate::system`].

use cluster::xor_into;
use raidx_core::fault::{plan_rebuild, RebuildSource};
use raidx_core::ReadSource;
use sim_core::plan::{par, seq};
use sim_core::Plan;

use crate::error::IoError;
use crate::system::IoSystem;

impl IoSystem {
    /// Scrub: audit that every written block's redundancy is consistent
    /// on the functional plane — mirror images byte-identical to their
    /// data, parity blocks equal to the XOR of their stripe. Returns the
    /// number of redundancy relations audited; any inconsistency is an
    /// error naming the offending block. (The real CDD would run this in
    /// idle time; here it is the test suite's strongest invariant check.)
    pub fn scrub(&mut self) -> Result<u64, IoError> {
        let bs = self.block_size() as usize;
        let mut audited = 0u64;
        let width = self.layout.stripe_width() as u64;
        for lb in 0..self.high_water {
            let d = self.layout.locate_data(lb);
            if self.faults.contains(d.disk) {
                continue;
            }
            let data = self.plane.read_owned(d.disk, d.block)?;
            // Mirror images must match exactly.
            for img in self.layout.locate_images(lb) {
                if self.faults.contains(img.disk) {
                    continue;
                }
                let copy = self.plane.read_owned(img.disk, img.block)?;
                if copy != data {
                    return Err(IoError::DataLoss { lb });
                }
                audited += 1;
            }
            // Parity must equal the XOR of the whole stripe (checked once
            // per stripe, at its first member).
            if let Some(p) = self.layout.locate_parity(lb) {
                let (s, pos) = self.layout.stripe_of(lb);
                if pos == 0 && !self.faults.contains(p.disk) {
                    let mut acc = vec![0u8; bs];
                    let mut complete = true;
                    for member in self.layout.stripe_blocks(s) {
                        let a = self.layout.locate_data(member);
                        if self.faults.contains(a.disk) {
                            complete = false;
                            break;
                        }
                        let bytes = self.plane.read_owned(a.disk, a.block)?;
                        xor_into(&mut acc, &bytes);
                    }
                    if complete {
                        let parity = self.plane.read_owned(p.disk, p.block)?;
                        if parity != acc {
                            return Err(IoError::DataLoss { lb: s * width });
                        }
                        audited += 1;
                    }
                }
            }
        }
        Ok(audited)
    }

    /// Replace `disk` with a blank spare and restore every block it held
    /// (primaries, images and parity), driven from node `client`.
    /// Returns the timing plan and the number of blocks restored.
    pub fn rebuild_disk(&mut self, client: usize, disk: usize) -> Result<(Plan, usize), IoError> {
        assert!(self.faults.contains(disk), "rebuilding a healthy disk");
        let mut remaining = self.faults.clone();
        remaining.remove(disk);
        let steps = plan_rebuild(self.layout.as_ref(), disk, &remaining, self.high_water)
            .map_err(|lost| IoError::DataLoss { lb: lost[0] })?;
        self.plane.replace(disk);

        let bs = self.block_size() as usize;
        let mut step_plans = Vec::with_capacity(steps.len());
        // Split borrows: collect functional actions first, then build plans.
        for step in &steps {
            match &step.source {
                RebuildSource::Copy(lb) => {
                    let src = match self.layout.read_source(*lb, &self.faults) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        _ => return Err(IoError::DataLoss { lb: *lb }),
                    };
                    let bytes = self.plane.read_owned(src.disk, src.block)?;
                    self.plane.write(step.target.disk, step.target.block, &bytes)?;
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut acc = vec![0u8; bs];
                    for (_, a) in siblings {
                        let b = self.plane.read_owned(a.disk, a.block)?;
                        xor_into(&mut acc, &b);
                    }
                    if let Some(p) = parity {
                        let b = self.plane.read_owned(p.disk, p.block)?;
                        xor_into(&mut acc, &b);
                    }
                    self.plane.write(step.target.disk, step.target.block, &acc)?;
                }
            }
        }
        let ops = self.ops();
        for step in &steps {
            let write = ops.write_run(client, step.target.disk, step.target.block, 1, false);
            let plan = match &step.source {
                RebuildSource::Copy(lb) => {
                    let src = match self.layout.read_source(*lb, &self.faults) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        _ => unreachable!("checked above"),
                    };
                    seq(vec![ops.read_run(client, src.disk, src.block, 1), write])
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut reads: Vec<Plan> = siblings
                        .iter()
                        .map(|(_, a)| ops.read_run(client, a.disk, a.block, 1))
                        .collect();
                    if let Some(p) = parity {
                        reads.push(ops.read_run(client, p.disk, p.block, 1));
                    }
                    let n = reads.len() as u64 + 1;
                    seq(vec![par(reads), ops.xor(client, n * bs as u64), write])
                }
            };
            step_plans.push(plan);
        }
        self.faults.remove(disk);

        // Pace the rebuild in batches (a real rebuilder bounds outstanding
        // I/O rather than flooding every queue at once).
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        Ok((seq(batched), steps.len()))
    }
}
