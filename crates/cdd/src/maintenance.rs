//! Array maintenance: redundancy scrub and resumable disk rebuild.
//!
//! Both walk the written region of the array from outside the request
//! pipeline — scrub audits the functional plane's redundancy relations,
//! rebuild restores a replaced disk from surviving copies. The cheap
//! transient path lives in [`crate::resync`]: the paper's Section 6
//! distinction, where a transient failure recovers from local state in
//! seconds while a permanent one pays a full rebuild.

use cluster::xor_into;
use raidx_core::fault::{plan_rebuild, RebuildSource};
use raidx_core::{BlockAddr, FaultSet, ReadSource};
use sim_core::plan::{par, seq};
use sim_core::Plan;

use crate::error::IoError;
use crate::system::IoSystem;

/// Outcome of one (possibly partial) rebuild attempt.
#[derive(Debug)]
pub struct RebuildOutcome {
    /// Timing plan of the attempt's actual I/O.
    pub plan: Plan,
    /// Blocks written by this attempt.
    pub restored: usize,
    /// Blocks found already correct on the target (a resumed rebuild
    /// re-verifies instead of rewriting — the idempotence guarantee).
    pub skipped: usize,
    /// Whether every planned step has now run; only then does the disk
    /// leave the fault set.
    pub finished: bool,
}

impl RebuildOutcome {
    /// Blocks this attempt accounted for (written + verified-present).
    /// Summing `restored` across a crash/restart sequence never exceeds
    /// the plan size: a block is restored once, then only skipped.
    pub fn rebuilt(&self) -> usize {
        self.restored + self.skipped
    }
}

impl IoSystem {
    /// Scrub: audit that every written block's redundancy is consistent
    /// on the functional plane — mirror images byte-identical to their
    /// data, parity blocks equal to the XOR of their stripe. Returns the
    /// number of redundancy relations audited; any inconsistency is an
    /// error naming the offending block. Copies on failed or offline
    /// disks are skipped, as are copies *parked* by degraded writes —
    /// those are known-stale until resync, not corruption. (The real CDD
    /// would run this in idle time; here it is the test suite's
    /// strongest invariant check.)
    pub fn scrub(&mut self) -> Result<u64, IoError> {
        let bs = self.block_size() as usize;
        let mut audited = 0u64;
        let width = self.layout.stripe_width() as u64;
        // Slot view of the media faults; also covers a migrating slot
        // whose vacated home is unreadable (those copies are known-good
        // via redundancy but not auditable in place until the rebalance
        // drains).
        let storage = self.placer.slot_read_faults(&self.storage_faults());
        let parked = self.parked.clone();
        // The parked ledger is keyed by physical disk; a slot-space copy
        // checks the entry of its *current* home (where resync restores).
        let is_parked = |sys: &Self, slot: usize, lb: u64| {
            parked.get(&sys.placer.phys(slot)).is_some_and(|s| s.contains(&lb))
        };
        for lb in 0..self.high_water {
            let d = self.layout.locate_data(lb);
            if storage.contains(d.disk) || is_parked(self, d.disk, lb) {
                continue;
            }
            let dh = self.placer.read_home(d);
            let data = self.plane.read_owned(dh.disk, dh.block)?;
            // Mirror images must match exactly.
            for img in self.layout.locate_images(lb) {
                if storage.contains(img.disk) || is_parked(self, img.disk, lb) {
                    continue;
                }
                let ih = self.placer.read_home(img);
                let copy = self.plane.read_owned(ih.disk, ih.block)?;
                if copy != data {
                    return Err(IoError::DataLoss { lb });
                }
                audited += 1;
            }
            // Parity must equal the XOR of the whole stripe (checked once
            // per stripe, at its first member).
            if let Some(p) = self.layout.locate_parity(lb) {
                let (s, pos) = self.layout.stripe_of(lb);
                if pos == 0 && !storage.contains(p.disk) {
                    let mut acc = vec![0u8; bs];
                    let mut complete = true;
                    for member in self.layout.stripe_blocks(s) {
                        let a = self.layout.locate_data(member);
                        if storage.contains(a.disk)
                            || is_parked(self, a.disk, member)
                            || is_parked(self, p.disk, member)
                        {
                            complete = false;
                            break;
                        }
                        let ah = self.placer.read_home(a);
                        let bytes = self.plane.read_owned(ah.disk, ah.block)?;
                        xor_into(&mut acc, &bytes);
                    }
                    if complete {
                        let ph = self.placer.read_home(p);
                        let parity = self.plane.read_owned(ph.disk, ph.block)?;
                        if parity != acc {
                            return Err(IoError::DataLoss { lb: s * width });
                        }
                        audited += 1;
                    }
                }
            }
        }
        Ok(audited)
    }

    /// Replace `disk` with a blank spare and restore every block it held
    /// (primaries, images and parity), driven from node `client`.
    /// Returns the timing plan and the number of blocks accounted for.
    pub fn rebuild_disk(&mut self, client: usize, disk: usize) -> Result<(Plan, usize), IoError> {
        let outcome = self.rebuild_disk_resumable(client, disk, None)?;
        debug_assert!(outcome.finished);
        let rebuilt = outcome.rebuilt();
        Ok((outcome.plan, rebuilt))
    }

    /// Rebuild with an optional step budget, safe to re-run after a
    /// power failure mid-rebuild.
    ///
    /// The target plane is wiped only when the media is actually failed;
    /// on a restart (target already replaced, partially restored) the
    /// surviving restored blocks are detected and *skipped*, so the
    /// rebuild is idempotent and `restored` summed across attempts never
    /// double-counts a block. The disk rejoins the array — and its
    /// parked-block ledger clears — only when the final step completes.
    pub fn rebuild_disk_resumable(
        &mut self,
        client: usize,
        disk: usize,
        step_limit: Option<usize>,
    ) -> Result<RebuildOutcome, IoError> {
        assert!(self.faults.contains(disk), "rebuilding a healthy disk");
        // Rebuild planning runs in slot space; `disk` is the physical
        // target, which must be serving a slot (Active) to be rebuilt.
        let slot = self.placer.map().slot_of(disk).expect("rebuilding a disk that serves no slot"); // lint-ok(no-unwrap): operator-error invariant — callers rebuild active disks only
        let mut remaining = self.placer.slot_read_faults(&self.storage_faults());
        remaining.remove(slot);
        let steps = plan_rebuild(self.layout.as_ref(), slot, &remaining, self.high_water)
            .map_err(|lost| IoError::DataLoss { lb: lost[0] })?;
        if self.plane.is_failed(disk) {
            self.plane.replace(disk);
        }
        let limit = step_limit.unwrap_or(usize::MAX).min(steps.len());
        // Still contains `slot`: sources never read the rebuild target.
        let sources = self.placer.slot_read_faults(&self.storage_faults());

        let bs = self.block_size() as usize;
        let mut restored = 0usize;
        let mut skipped = 0usize;
        let mut wrote = Vec::with_capacity(limit);
        // Split borrows: functional restoration first, then the plans.
        for step in steps.iter().take(limit) {
            let bytes = match &step.source {
                RebuildSource::Copy(lb) => {
                    // Reconstruct/Lost: fault set changed under a planned Copy.
                    let src = match self.layout.read_source(*lb, &sources) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        ReadSource::Reconstruct { .. } | ReadSource::Lost => {
                            return Err(IoError::DataLoss { lb: *lb })
                        }
                    };
                    let h = self.placer.read_home(src);
                    self.plane.read_owned(h.disk, h.block)?
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut acc = vec![0u8; bs];
                    for (_, a) in siblings {
                        let h = self.placer.read_home(*a);
                        let b = self.plane.read_owned(h.disk, h.block)?;
                        xor_into(&mut acc, &b);
                    }
                    if let Some(p) = parity {
                        let h = self.placer.read_home(*p);
                        let b = self.plane.read_owned(h.disk, h.block)?;
                        xor_into(&mut acc, &b);
                    }
                    acc
                }
            };
            let existing = self.plane.read_owned(disk, step.target.block)?;
            if existing == bytes {
                skipped += 1;
                wrote.push(false);
            } else {
                self.plane.write(disk, step.target.block, &bytes)?;
                restored += 1;
                wrote.push(true);
            }
        }
        let ops = self.ops();
        let placer = &self.placer;
        let mut step_plans = Vec::with_capacity(restored);
        for (step, wrote) in steps.iter().take(limit).zip(&wrote) {
            if !wrote {
                continue; // verified in place: no rebuild I/O to charge
            }
            let write = ops.write_run(client, disk, step.target.block, 1, false);
            let plan = match &step.source {
                RebuildSource::Copy(lb) => {
                    let src = match self.layout.read_source(*lb, &sources) {
                        ReadSource::Primary(a) | ReadSource::Image(a) => a,
                        ReadSource::Reconstruct { .. } | ReadSource::Lost => {
                            unreachable!("restoration pass above already resolved this source")
                        }
                    };
                    let h = placer.read_home(src);
                    seq(vec![ops.read_run(client, h.disk, h.block, 1), write])
                }
                RebuildSource::Xor { siblings, parity } => {
                    let mut reads: Vec<Plan> = siblings
                        .iter()
                        .map(|(_, a)| {
                            let h = placer.read_home(*a);
                            ops.read_run(client, h.disk, h.block, 1)
                        })
                        .collect();
                    if let Some(p) = parity {
                        let h = placer.read_home(*p);
                        reads.push(ops.read_run(client, h.disk, h.block, 1));
                    }
                    let n = reads.len() as u64 + 1;
                    seq(vec![par(reads), ops.xor(client, n * bs as u64), write])
                }
            };
            step_plans.push(plan);
        }
        let finished = limit == steps.len();
        if finished {
            self.faults.remove(disk);
            self.parked.remove(&disk);
        }

        // Pace the rebuild in batches (a real rebuilder bounds outstanding
        // I/O rather than flooding every queue at once).
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        let plan = if batched.is_empty() { Plan::Noop } else { seq(batched) };
        Ok(RebuildOutcome { plan, restored, skipped, finished })
    }

    /// Materialize logical block `lb` from the best source outside
    /// `avoid` (slot space), returning the bytes and the *physical*
    /// blocks read — layout chooses sources among slots, the placer
    /// translates each to its current serving disk.
    pub(crate) fn fetch_block(
        &mut self,
        lb: u64,
        avoid: &FaultSet,
    ) -> Result<(Vec<u8>, Vec<BlockAddr>), IoError> {
        match self.layout.read_source(lb, avoid) {
            ReadSource::Primary(a) | ReadSource::Image(a) => {
                let h = self.placer.read_home(a);
                Ok((self.plane.read_owned(h.disk, h.block)?, vec![h]))
            }
            ReadSource::Reconstruct { siblings, parity } => {
                let ph = self.placer.read_home(parity);
                let mut acc = self.plane.read_owned(ph.disk, ph.block)?;
                let mut inputs = vec![ph];
                for (_, a) in siblings {
                    let h = self.placer.read_home(a);
                    let b = self.plane.read_owned(h.disk, h.block)?;
                    xor_into(&mut acc, &b);
                    inputs.push(h);
                }
                Ok((acc, inputs))
            }
            ReadSource::Lost => Err(IoError::DataLoss { lb }),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testkit::shape;
    use raidx_core::Arch;

    /// Satellite: a power failure mid-rebuild must be recoverable by
    /// simply re-planning — already-restored blocks are detected and
    /// skipped, nothing is double-counted, and the array ends clean.
    #[test]
    fn crash_mid_rebuild_resumes_idempotently() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 32u64;
        let data: Vec<u8> =
            (0..nblocks as usize * bs).map(|i| ((i * 7 + 3) % 253) as u8 + 1).collect();
        sys.write(0, 0, &data).expect("seed");
        sys.fail_disk(2);

        // First attempt dies after five steps ("power failure").
        let a = sys.rebuild_disk_resumable(0, 2, Some(5)).expect("partial rebuild");
        assert!(!a.finished, "five steps must not finish the rebuild");
        assert_eq!(a.restored, 5);
        assert_eq!(a.skipped, 0, "nothing was restored before the crash");
        assert!(sys.faults().contains(2), "unfinished rebuild must keep the fault");

        // Restart: re-plan from scratch. The five restored blocks are
        // recognised as already correct and skipped, the rest restored.
        let b = sys.rebuild_disk_resumable(0, 2, None).expect("resumed rebuild");
        assert!(b.finished);
        assert_eq!(b.skipped, 5, "restart must skip exactly the pre-crash progress");
        assert_eq!(
            a.restored + b.restored,
            b.restored + b.skipped,
            "a block was restored twice across the crash"
        );
        assert!(!sys.faults().contains(2));
        engine.spawn_job("rebuild", b.plan);
        engine.run().expect("rebuild timing");

        let (got, _) = sys.read(1, 0, nblocks).expect("post-rebuild read");
        assert_eq!(got, data);
        assert!(sys.scrub().expect("scrub") > 0);
    }
}
