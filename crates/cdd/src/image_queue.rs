//! Data-plane write-behind: the OSM image queue.
//!
//! RAID-x acknowledges a write after the data blocks alone; the mirror
//! images accumulate here, clustered per mirroring group, and a group
//! that fills flushes as one long sequential background write — the
//! orthogonal striping and mirroring mechanism that removes per-write
//! mirroring cost. The paper leaves that backlog unbounded ("background
//! writes"); [`ImageQueue`] makes it first-class and boundable: with
//! [`crate::CddConfig::max_image_backlog`] set, overflow groups are
//! shed to the *foreground* path via [`ImageQueue::drain_overflow`], so
//! a sustained burst pays a partial clustered flush instead of growing
//! the queue without limit (the contention regime of Figure 5).

use raidx_core::BlockAddr;
use sim_core::Plan;

use crate::ops::OpBuilder;

/// One buffered mirror-image block awaiting its group flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingImage {
    /// Node that issued the write (the flush ships from it).
    pub client: usize,
    /// Logical block the image mirrors.
    pub lb: u64,
    /// Physical address of the image copy.
    pub addr: BlockAddr,
}

/// The write-behind buffer of the OSM image path.
///
/// Images accumulate per mirroring group; a *completed* group is handed
/// back to the caller to flush as one long sequential write. Iteration
/// and drain order follow the group key order (a `BTreeMap`), so the
/// background plan is deterministic across engine instances — the
/// determinism audit diffs two same-seed runs event for event.
#[derive(Debug, Default)]
pub struct ImageQueue {
    groups: std::collections::BTreeMap<u64, Vec<PendingImage>>,
    /// Total buffered blocks (kept incrementally: `len` is on the write
    /// hot path when a backlog bound is configured).
    total: usize,
}

impl ImageQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer one image under its mirroring group. Returns the blocks
    /// that became ready to flush: the whole group once it fills, or the
    /// image itself when the layout defines no group for it. Overwrites
    /// of a still-buffered logical block replace in place.
    pub fn push(&mut self, img: PendingImage, group: Option<(u64, usize)>) -> Vec<PendingImage> {
        match group {
            Some((key, group_len)) => {
                let entry = self.groups.entry(key).or_default();
                if let Some(slot) = entry.iter_mut().find(|p| p.lb == img.lb) {
                    *slot = img;
                } else {
                    entry.push(img);
                    self.total += 1;
                }
                if entry.len() >= group_len {
                    let full = self.groups.remove(&key).expect("entry exists"); // lint-ok(no-unwrap): key taken from the map's own iteration one line up
                    self.total -= full.len();
                    full
                } else {
                    Vec::new()
                }
            }
            None => vec![img],
        }
    }

    /// Number of image blocks currently buffered.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of buffered image blocks destined for `disk` — what
    /// [`ImageQueue::remove_disk`] would drain, without draining it.
    pub fn blocks_on_disk(&self, disk: usize) -> usize {
        self.groups.values().flatten().filter(|p| p.addr.disk == disk).count()
    }

    /// Drain every buffered group (partial groups included), in group key
    /// order. Call at sync points.
    pub fn drain_all(&mut self) -> Vec<PendingImage> {
        let mut all = Vec::with_capacity(self.total);
        for (_, v) in std::mem::take(&mut self.groups) {
            all.extend(v);
        }
        self.total = 0;
        all
    }

    /// Remove every buffered image destined for `disk`, in group key
    /// order, emptying groups as needed. Called when a disk fails or
    /// goes offline: flushing those entries later would write into a
    /// dead disk, and silently keeping them enqueued both leaks
    /// [`ImageQueue::len`] accounting and strands their groups (a group
    /// missing a member can never fill). The caller parks the returned
    /// blocks for rebuild/resync.
    pub fn remove_disk(&mut self, disk: usize) -> Vec<PendingImage> {
        let mut removed = Vec::new();
        self.groups.retain(|_, entries| {
            entries.retain(|p| {
                if p.addr.disk == disk {
                    removed.push(*p);
                    false
                } else {
                    true
                }
            });
            !entries.is_empty()
        });
        self.total -= removed.len();
        removed
    }

    /// Retarget every buffered image aimed at physical disk `old` to the
    /// same block on physical disk `new`. Called by an epoch transition:
    /// the image bytes are already durable on the functional plane (and
    /// migrate with the pending set), but the deferred flush must charge
    /// the slot's *new* home, not a retired disk. Returns the number of
    /// entries retargeted.
    pub fn retarget_disk(&mut self, old: usize, new: usize) -> usize {
        let mut n = 0;
        for entries in self.groups.values_mut() {
            for p in entries.iter_mut() {
                if p.addr.disk == old {
                    p.addr.disk = new;
                    n += 1;
                }
            }
        }
        n
    }

    /// Re-home every image buffered by crashed node `node`: the flush
    /// would ship from a dead machine, so each entry's client becomes
    /// `reroute(entry)` (typically the target disk's owner, which holds
    /// the already-written primary copy locally).
    pub fn reassign_client(
        &mut self,
        node: usize,
        mut reroute: impl FnMut(&PendingImage) -> usize,
    ) {
        for entries in self.groups.values_mut() {
            for p in entries.iter_mut() {
                if p.client == node {
                    p.client = reroute(p);
                }
            }
        }
    }

    /// Shed whole groups — lowest key first, partial or not — until at
    /// most `bound` blocks remain buffered. The returned blocks are the
    /// backpressure debt the *foreground* write must pay as a partial
    /// clustered flush.
    pub fn drain_overflow(&mut self, bound: usize) -> Vec<PendingImage> {
        let mut shed = Vec::new();
        while self.total > bound {
            let key = match self.groups.keys().next() {
                Some(&k) => k,
                None => break,
            };
            let group = self.groups.remove(&key).expect("key exists"); // lint-ok(no-unwrap): key taken from the map's own keys above
            self.total -= group.len();
            shed.extend(group);
        }
        shed
    }

    /// Build the write plans for flushed image blocks, merging physically
    /// consecutive blocks into single long writes and shipping each run
    /// from the node that buffered its first member. Plans carry no ack:
    /// the foreground request was acknowledged after its data writes.
    pub fn flush_plans(ops: &OpBuilder<'_>, mut items: Vec<PendingImage>) -> Vec<Plan> {
        items.sort_unstable_by_key(|p| (p.addr.disk, p.addr.block));
        let mut plans = Vec::new();
        let mut i = 0;
        while i < items.len() {
            let PendingImage { client, addr: start, .. } = items[i];
            let mut len = 1u64;
            while i + len as usize != items.len() {
                let next = items[i + len as usize].addr;
                if next.disk == start.disk && next.block == start.block + len {
                    len += 1;
                } else {
                    break;
                }
            }
            plans.push(ops.write_run(client, start.disk, start.block, len, false));
            i += len as usize;
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(client: usize, lb: u64, disk: usize, block: u64) -> PendingImage {
        PendingImage { client, lb, addr: BlockAddr::new(disk, block) }
    }

    #[test]
    fn full_group_flushes_as_one() {
        let mut q = ImageQueue::new();
        assert!(q.push(img(0, 0, 1, 10), Some((7, 3))).is_empty());
        assert!(q.push(img(0, 1, 1, 11), Some((7, 3))).is_empty());
        assert_eq!(q.len(), 2);
        let ready = q.push(img(0, 2, 1, 12), Some((7, 3)));
        assert_eq!(ready.len(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn ungrouped_images_flush_immediately() {
        let mut q = ImageQueue::new();
        let ready = q.push(img(2, 5, 0, 9), None);
        assert_eq!(ready, vec![img(2, 5, 0, 9)]);
        assert!(q.is_empty());
    }

    #[test]
    fn overwrite_replaces_in_place() {
        let mut q = ImageQueue::new();
        q.push(img(0, 4, 1, 20), Some((3, 4)));
        q.push(img(1, 4, 1, 21), Some((3, 4)));
        assert_eq!(q.len(), 1, "overwrite must not grow the group");
    }

    #[test]
    fn drain_all_preserves_group_key_order() {
        let mut q = ImageQueue::new();
        q.push(img(0, 9, 2, 0), Some((9, 4)));
        q.push(img(0, 1, 1, 0), Some((1, 4)));
        let all = q.drain_all();
        assert_eq!(all.iter().map(|p| p.lb).collect::<Vec<_>>(), vec![1, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_sheds_whole_groups_until_bound() {
        let mut q = ImageQueue::new();
        for g in 0..4u64 {
            for b in 0..3u64 {
                q.push(img(0, g * 10 + b, g as usize, b), Some((g, 8)));
            }
        }
        assert_eq!(q.len(), 12);
        let shed = q.drain_overflow(5);
        // Whole groups pop lowest-key first: groups 0, 1 and 2 go (9
        // blocks) leaving group 3's 3 blocks ≤ the bound of 5.
        assert_eq!(shed.len(), 9);
        assert_eq!(q.len(), 3);
        assert!(q.drain_overflow(5).is_empty(), "under the bound nothing sheds");
        assert!(q.drain_overflow(0).len() == 3 && q.is_empty());
    }

    #[test]
    fn remove_disk_drops_only_that_disks_entries_and_fixes_len() {
        let mut q = ImageQueue::new();
        q.push(img(0, 0, 3, 10), Some((0, 8)));
        q.push(img(0, 1, 4, 11), Some((0, 8)));
        q.push(img(0, 9, 3, 12), Some((1, 8)));
        assert_eq!(q.len(), 3);
        let removed = q.remove_disk(3);
        assert_eq!(removed.iter().map(|p| p.lb).collect::<Vec<_>>(), vec![0, 9]);
        assert_eq!(q.len(), 1, "accounting must match the survivors");
        assert_eq!(q.drain_all(), vec![img(0, 1, 4, 11)]);
        assert!(q.remove_disk(3).is_empty(), "idempotent on an already-drained disk");
    }

    #[test]
    fn reassign_client_reroutes_crashed_nodes_entries() {
        let mut q = ImageQueue::new();
        q.push(img(2, 0, 5, 0), Some((0, 8)));
        q.push(img(1, 1, 6, 0), Some((0, 8)));
        q.reassign_client(2, |p| p.addr.disk % 4);
        let all = q.drain_all();
        assert_eq!(all[0].client, 1, "disk 5 entry re-homed to its owner node");
        assert_eq!(all[1].client, 1, "other clients untouched");
    }

    #[test]
    fn empty_queue_edge_operations_are_noops() {
        let mut q = ImageQueue::new();
        assert!(q.remove_disk(0).is_empty());
        assert_eq!(q.blocks_on_disk(0), 0);
        assert!(q.drain_overflow(0).is_empty());
        q.reassign_client(0, |_| unreachable!("nothing to reroute"));
        assert!(q.is_empty());
        assert!(q.drain_all().is_empty());
    }

    #[test]
    fn removing_the_last_groups_only_disk_leaves_no_stranded_group() {
        let mut q = ImageQueue::new();
        q.push(img(0, 0, 2, 10), Some((5, 3)));
        q.push(img(0, 1, 2, 11), Some((5, 3)));
        assert_eq!(q.blocks_on_disk(2), 2);
        let removed = q.remove_disk(2);
        assert_eq!(removed.len(), 2);
        assert!(q.is_empty(), "emptied group must be deleted, not left as a husk");
        assert_eq!(q.blocks_on_disk(2), 0);
        // The group must refill from scratch: two pushes stay buffered,
        // the third completes it again.
        assert!(q.push(img(0, 0, 3, 10), Some((5, 3))).is_empty());
        assert!(q.push(img(0, 1, 3, 11), Some((5, 3))).is_empty());
        assert_eq!(q.push(img(0, 2, 3, 12), Some((5, 3))).len(), 3);
    }

    #[test]
    fn blocks_on_disk_matches_what_remove_disk_drains() {
        let mut q = ImageQueue::new();
        for lb in 0..6u64 {
            q.push(img(0, lb, (lb % 3) as usize, lb), Some((lb, 8)));
        }
        for disk in 0..4usize {
            let predicted = q.blocks_on_disk(disk);
            assert_eq!(q.remove_disk(disk).len(), predicted, "disk {disk}");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn reassign_chains_across_successive_crashes() {
        // Node 2 crashes and its entries re-home to node 3; then node 3
        // crashes (now partitioned too) and the same entries must
        // re-home again — no entry may stay owned by a dead node.
        let mut q = ImageQueue::new();
        q.push(img(2, 0, 5, 0), Some((0, 8)));
        q.push(img(2, 1, 6, 0), Some((1, 8)));
        q.reassign_client(2, |_| 3);
        q.reassign_client(3, |_| 1);
        let all = q.drain_all();
        assert!(all.iter().all(|p| p.client == 1), "{all:?}");
    }

    #[test]
    fn remove_disk_then_overflow_keeps_backlog_accounting_consistent() {
        // The max_image_backlog interaction: a disk drain mid-stream must
        // leave `len` exact, so a following overflow shed stops at the
        // bound instead of over- or under-shedding.
        let mut q = ImageQueue::new();
        for g in 0..4u64 {
            for b in 0..3u64 {
                q.push(img(0, g * 10 + b, b as usize, g * 10 + b), Some((g, 8)));
            }
        }
        assert_eq!(q.len(), 12);
        let dropped = q.remove_disk(1); // one block per group
        assert_eq!(dropped.len(), 4);
        assert_eq!(q.len(), 8);
        let shed = q.drain_overflow(5);
        // Whole groups shed lowest-key first, 2 blocks each now: groups
        // 0 and 1 go, leaving 4 ≤ 5.
        assert_eq!(shed.len(), 4);
        assert_eq!(q.len(), 4);
        assert!(shed.iter().all(|p| p.addr.disk != 1), "drained disk resurfaced in overflow");
        assert_eq!(q.drain_all().len(), 4);
    }

    #[test]
    fn len_tracks_push_and_drain() {
        let mut q = ImageQueue::new();
        for lb in 0..5u64 {
            q.push(img(0, lb, 0, lb), Some((lb / 4, 4)));
        }
        // Group 0 (lbs 0..4) filled and flushed; lb 4 remains.
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_all().len(), 1);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn retarget_disk_moves_entries_without_disturbing_groups() {
        let mut q = ImageQueue::new();
        q.push(img(0, 0, 2, 10), Some((5, 3)));
        q.push(img(0, 1, 3, 11), Some((5, 3)));
        assert_eq!(q.retarget_disk(2, 7), 1);
        assert_eq!(q.blocks_on_disk(2), 0);
        assert_eq!(q.blocks_on_disk(7), 1);
        assert_eq!(q.len(), 2, "retargeting must not change accounting");
        // The group still completes on its third member and flushes with
        // the rewritten address.
        let ready = q.push(img(0, 2, 3, 12), Some((5, 3)));
        assert_eq!(ready.len(), 3);
        assert_eq!(ready[0].addr, BlockAddr::new(7, 10));
    }

    #[test]
    fn retarget_of_a_drained_disk_is_a_noop() {
        let mut q = ImageQueue::new();
        q.push(img(0, 0, 4, 9), Some((0, 8)));
        assert_eq!(q.remove_disk(4).len(), 1);
        assert_eq!(q.retarget_disk(4, 5), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn group_buffered_across_remove_and_readd_of_the_same_disk_id() {
        // A group holds entries for disks 1 and 2; disk 2 leaves the
        // array (its entries drain), then a *new* physical disk reuses
        // nothing — but a buggy queue that kept stale per-disk indexes
        // could double-count if id 2 later buffers fresh entries.
        let mut q = ImageQueue::new();
        q.push(img(0, 0, 1, 10), Some((4, 3)));
        q.push(img(0, 1, 2, 11), Some((4, 3)));
        assert_eq!(q.remove_disk(2).len(), 1);
        assert_eq!(q.len(), 1);
        // Fresh traffic addressed to disk id 2 again (e.g. after the
        // roster re-binds the slot) must account from zero.
        q.push(img(0, 1, 2, 20), Some((4, 3)));
        assert_eq!(q.blocks_on_disk(2), 1);
        let ready = q.push(img(0, 2, 1, 12), Some((4, 3)));
        assert_eq!(ready.len(), 3);
        assert_eq!(ready.iter().filter(|p| p.addr.disk == 2).count(), 1);
        assert_eq!(ready.iter().find(|p| p.lb == 1).map(|p| p.addr.block), Some(20));
        assert!(q.is_empty());
    }

    #[test]
    fn retarget_then_remove_drains_at_the_new_home_only() {
        let mut q = ImageQueue::new();
        q.push(img(0, 0, 3, 10), Some((0, 8)));
        q.push(img(0, 9, 3, 12), Some((1, 8)));
        assert_eq!(q.retarget_disk(3, 6), 2);
        assert!(q.remove_disk(3).is_empty(), "old id no longer owns the entries");
        let drained = q.remove_disk(6);
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}
