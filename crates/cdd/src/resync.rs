//! Transient recovery: resyncing the blocks parked by degraded writes.
//!
//! The paper's Section 6 distinction, cheap side: a disk that was only
//! *transiently* unavailable (offline, or behind a healed partition)
//! kept its contents, so recovery restores just the copies degraded
//! writes skipped — recorded per physical disk in the parked ledger —
//! from surviving replicas, instead of paying a full rebuild.

use std::collections::BTreeSet;

use cluster::xor_into;
use raidx_core::BlockAddr;
use sim_core::plan::{par, seq};
use sim_core::Plan;

use crate::error::IoError;
use crate::system::IoSystem;

/// How one resynced block was obtained (plan building).
enum ResyncAction {
    /// Straight copy from a surviving replica.
    Copy {
        src: BlockAddr,
        dst: BlockAddr,
    },
    Xor {
        inputs: Vec<BlockAddr>,
        dst: BlockAddr,
    },
}

impl IoSystem {
    /// Bring a transiently-offline disk back: its contents survived, so
    /// recovery only resyncs the blocks degraded writes parked while it
    /// was away — the paper's cheap transient path, in contrast to the
    /// full [`IoSystem::rebuild_disk`] a permanent failure pays.
    pub fn recover_disk_transient(
        &mut self,
        client: usize,
        disk: usize,
    ) -> Result<(Plan, usize), IoError> {
        assert!(self.offline.contains(disk), "disk is not transiently offline");
        self.plane.set_offline(disk, false);
        self.offline.remove(disk);
        self.resync_parked(client, disk)
    }

    /// Restore every copy parked against online `disk` from surviving
    /// replicas (after a transient outage or a healed partition).
    /// Returns the timing plan and the number of blocks restored.
    pub fn resync_parked(&mut self, client: usize, disk: usize) -> Result<(Plan, usize), IoError> {
        assert!(
            !self.faults.contains(disk) && !self.offline.contains(disk),
            "resync target must be online"
        );
        let lbs: Vec<u64> =
            self.parked.remove(&disk).map(|s| s.into_iter().collect()).unwrap_or_default();
        if lbs.is_empty() {
            return Ok((Plan::Noop, 0));
        }
        // The ledger is keyed by physical disk; the copies to restore are
        // the ones whose *slot* this disk currently serves.
        let slot = self.placer.map().slot_of(disk).expect("resyncing a disk that serves no slot"); // lint-ok(no-unwrap): operator-error invariant — parked ledgers only exist for active disks
                                                                                                   // Sources must avoid media faults *and* the target's stale copies
                                                                                                   // (slot space — fetch resolves copies through the placer).
        let mut avoid = self.placer.slot_read_faults(&self.storage_faults());
        avoid.insert(slot);

        let mut actions: Vec<ResyncAction> = Vec::new();
        let mut parity_stripes: BTreeSet<u64> = BTreeSet::new();
        for &lb in &lbs {
            let d = self.layout.locate_data(lb);
            if d.disk == slot {
                let (bytes, inputs) = self.fetch_block(lb, &avoid)?;
                let dst = BlockAddr::new(disk, d.block);
                self.plane.write(dst.disk, dst.block, &bytes)?;
                self.placer.clear_pending(slot, d.block);
                actions.push(match inputs.as_slice() {
                    [src] => ResyncAction::Copy { src: *src, dst },
                    _ => ResyncAction::Xor { inputs, dst },
                });
            }
            for img in self.layout.locate_images(lb) {
                if img.disk != slot {
                    continue;
                }
                let (bytes, inputs) = self.fetch_block(lb, &avoid)?;
                let dst = BlockAddr::new(disk, img.block);
                self.plane.write(dst.disk, dst.block, &bytes)?;
                self.placer.clear_pending(slot, img.block);
                actions.push(match inputs.as_slice() {
                    [src] => ResyncAction::Copy { src: *src, dst },
                    _ => ResyncAction::Xor { inputs, dst },
                });
            }
            if let Some(p) = self.layout.locate_parity(lb) {
                let (s, _) = self.layout.stripe_of(lb);
                if p.disk == slot && parity_stripes.insert(s) {
                    // Recompute the stripe's parity from its members.
                    let bs = self.block_size() as usize;
                    let mut acc = vec![0u8; bs];
                    let mut inputs = Vec::new();
                    for member in self.layout.stripe_blocks(s) {
                        let (bytes, ins) = self.fetch_block(member, &avoid)?;
                        xor_into(&mut acc, &bytes);
                        inputs.extend(ins);
                    }
                    let dst = BlockAddr::new(disk, p.block);
                    self.plane.write(dst.disk, dst.block, &acc)?;
                    self.placer.clear_pending(slot, p.block);
                    actions.push(ResyncAction::Xor { inputs, dst });
                }
            }
        }

        let bs = self.block_size() as usize;
        let ops = self.ops();
        let step_plans: Vec<Plan> = actions
            .iter()
            .map(|a| match a {
                ResyncAction::Copy { src, dst } => seq(vec![
                    ops.read_run(client, src.disk, src.block, 1),
                    ops.write_run(client, dst.disk, dst.block, 1, false),
                ]),
                ResyncAction::Xor { inputs, dst } => {
                    let reads: Vec<Plan> =
                        inputs.iter().map(|a| ops.read_run(client, a.disk, a.block, 1)).collect();
                    let n = reads.len() as u64 + 1;
                    seq(vec![
                        par(reads),
                        ops.xor(client, n * bs as u64),
                        ops.write_run(client, dst.disk, dst.block, 1, false),
                    ])
                }
            })
            .collect();
        let restored = step_plans.len();
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        let plan = if batched.is_empty() { Plan::Noop } else { seq(batched) };
        Ok((plan, restored))
    }
}

#[cfg(test)]
mod tests {
    use crate::testkit::shape;
    use raidx_core::Arch;
    /// A transient outage keeps the disk's contents: recovery resyncs
    /// only the blocks that went stale (parked) while it was offline.
    #[test]
    fn transient_recovery_resyncs_only_parked_blocks() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 24u64;
        let before: Vec<u8> = vec![0x42; nblocks as usize * bs];
        sys.write(0, 0, &before).expect("healthy seed");
        sys.fail_disk_transient(1);

        // Degraded overwrite of a prefix: copies on disk 1 get parked.
        let after: Vec<u8> = vec![0x91; 8 * bs];
        sys.write(0, 0, &after).expect("degraded write");
        let parked = sys.parked_blocks(1);
        assert!(parked > 0, "degraded writes must park the offline copies");

        // Reads already see the new bytes via the surviving copies.
        let (got, _) = sys.read(2, 0, 8).expect("degraded read");
        assert_eq!(got, after);

        let (plan, resynced) = sys.recover_disk_transient(0, 1).expect("recovery");
        assert_eq!(resynced, parked, "resync must cover exactly the parked blocks");
        assert_eq!(sys.parked_blocks(1), 0);
        assert!(sys.offline_disks().is_empty());
        engine.spawn_job("resync", plan);
        engine.run().expect("resync timing");

        let (got, _) = sys.read(2, 0, nblocks).expect("post-recovery read");
        assert_eq!(&got[..8 * bs], &after[..]);
        assert_eq!(&got[8 * bs..], &before[8 * bs..]);
        assert!(sys.scrub().expect("scrub") > 0);
    }
}
