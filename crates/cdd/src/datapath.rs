//! The request paths of the [`IoSystem`]: epoch-stamped admission,
//! locked writes through the scheme drivers, and replica-balanced reads.
//!
//! Every request is admitted first ([`crate::frontend::Admission`]),
//! stamping the placement epoch the client saw. Writes must execute
//! under the same epoch; reads may trail by one while that epoch's
//! migration drains — the placer serves still-pending blocks from their
//! old physical home, which *is* the stale epoch's view, so such reads
//! stay byte-correct without blocking on the rebalance.
//!
//! All placement decisions (layout addresses, fault routing, replica
//! selection) happen in logical *slot* space; the translation to
//! physical disks happens at the plane boundary through the
//! [`crate::placer::Placer`], and is the identity on a
//! never-reconfigured array.

use cluster::xor_into;
use raidx_core::{FaultSet, ReadSource};
use sim_core::plan::{delay, par, seq};
use sim_core::trace::AccessKind;
use sim_core::{hb, Plan};

use crate::error::IoError;
use crate::frontend::{self, Admission};
use crate::runs::merge_runs;
use crate::scheme::{self, WriteCtx};
use crate::system::IoSystem;

impl IoSystem {
    /// Admit a write of `len` bytes at `lb0`, stamping the current epoch.
    pub fn admit_write(&self, lb0: u64, len: usize) -> Result<Admission, IoError> {
        let bs = self.block_size() as usize;
        let nblocks = frontend::validate_write(bs, self.capacity_blocks(), lb0, len)?;
        Ok(Admission { lb0, nblocks, epoch: self.placer.epoch() })
    }

    /// Admit a read of `nblocks` blocks at `lb0`, stamping the current
    /// epoch.
    pub fn admit_read(&self, lb0: u64, nblocks: u64) -> Result<Admission, IoError> {
        frontend::validate_range(lb0, nblocks, self.capacity_blocks())?;
        Ok(Admission { lb0, nblocks, epoch: self.placer.epoch() })
    }

    /// Write `data` (a whole number of blocks) at logical block `lb0` on
    /// behalf of node `client`. Returns the timing plan; the bytes are
    /// already durable on the functional plane when this returns.
    pub fn write(&mut self, client: usize, lb0: u64, data: &[u8]) -> Result<Plan, IoError> {
        let adm = self.admit_write(lb0, data.len())?;
        self.write_admitted(client, adm, data)
    }

    /// Execute a previously admitted write. Fails with
    /// [`IoError::StaleEpoch`] if the placement epoch moved since
    /// admission — the client must re-admit against the new map.
    pub fn write_admitted(
        &mut self,
        client: usize,
        adm: Admission,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let current = self.placer.epoch();
        if adm.epoch != current {
            return Err(IoError::StaleEpoch { seen: adm.epoch, current });
        }
        let bs = self.block_size() as usize;
        let (lb0, nblocks) = (adm.lb0, adm.nblocks);
        if data.len() != nblocks as usize * bs {
            return Err(IoError::BadLength { expected: nblocks as usize * bs, got: data.len() });
        }

        // Client module: plan against what this client can actually reach.
        // An alive-but-unreachable copy costs one timed-out attempt before
        // the degraded write proceeds without it (parking the copy); with
        // retries disabled the request surfaces the partition instead.
        let eff = self.effective_faults(client);
        let eff_slots = self.placer.slot_write_faults(&eff);
        let blocked = self.blocked_peer(&eff, lb0, nblocks);
        if let Some(node) = blocked {
            if self.cfg.max_retries == 0 {
                return Err(IoError::Unreachable { node, attempts: 1 });
            }
        }

        // Consistency module: atomically acquire the lock group, held for
        // the duration of the (logically instantaneous) functional update.
        let lock = self.locks.acquire(client, lb0, nblocks).map_err(IoError::Lock)?;
        self.sample_locks();
        // Protocol trace: the whole op shares one synthetic tick, in
        // program order grant → write → surrenders → release.
        let tick = if self.tracer.is_some() { Some(self.next_op_tick()) } else { None };
        let actor = hb::client_actor(client);
        if let Some(at) = tick {
            self.trace_access(at, actor, hb::sios_cell(lb0), nblocks, AccessKind::Acquire);
        }
        let mut surrendered = if tick.is_some() { Some(Vec::new()) } else { None };
        let result =
            self.write_locked(client, &eff_slots, lb0, nblocks, data, surrendered.as_mut());
        // Coherence: the write grant doubles as the invalidation
        // broadcast through the replicated lock-group table — every
        // client's cached copy of the range is dropped while the grant
        // is still held, even if the write itself failed partway.
        self.cache_invalidate(lb0, nblocks);
        self.locks.release(lock);
        if let Some(at) = tick {
            if result.is_ok() {
                self.trace_access(at, actor, hb::sios_cell(lb0), nblocks, AccessKind::Write);
                for lb in surrendered.as_deref().unwrap_or(&[]) {
                    self.trace_access(at, actor, hb::image_cell(*lb), 1, AccessKind::Write);
                }
            }
            self.trace_access(at, actor, hb::sios_cell(lb0), nblocks, AccessKind::Release);
        }
        let body = match result {
            Ok(body) => body,
            Err(IoError::DataLoss { lb }) => return Err(self.classify_loss(client, lb)),
            Err(e) => return Err(e),
        };
        self.sample_backlog();
        self.high_water = self.high_water.max(lb0 + nblocks);

        let ops = self.ops();
        let mut chain = vec![ops.driver(client)];
        if self.cfg.lock_broadcast {
            chain.push(ops.lock_round(client));
        }
        if blocked.is_some() {
            self.timeouts += 1;
            self.failovers += 1;
            chain.push(delay(self.cfg.request_timeout));
        }
        chain.push(body);
        Ok(seq(chain))
    }

    /// Scheme-driver dispatch: hand the admitted, locked write to the
    /// driver matching the layout's write scheme, planned against the
    /// requesting client's effective fault set (slot view).
    fn write_locked(
        &mut self,
        client: usize,
        eff_slots: &FaultSet,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
        surrendered: Option<&mut Vec<u64>>,
    ) -> Result<Plan, IoError> {
        let driver = scheme::driver_for(self.layout.write_scheme());
        let mut ctx = WriteCtx {
            layout: self.layout.as_ref(),
            plane: &mut self.plane,
            placer: &mut self.placer,
            faults: eff_slots,
            cluster: &self.cluster,
            cfg: &self.cfg,
            images: &mut self.images,
            parked: &mut self.parked,
            surrendered,
        };
        driver.write(&mut ctx, client, lb0, nblocks, data)
    }

    /// First alive-but-unreachable peer node involved in a request over
    /// `[lb0, lb0+nblocks)`, if any — the node a timed-out attempt is
    /// charged against. `eff` is the client's physical-space view.
    pub(crate) fn blocked_peer(&self, eff: &FaultSet, lb0: u64, nblocks: u64) -> Option<usize> {
        if self.partitions.is_empty() {
            return None;
        }
        let storage = self.storage_faults();
        for lb in lb0..lb0 + nblocks {
            for a in self.copy_addrs(lb) {
                let phys = self.placer.read_home(a).disk;
                if eff.contains(phys)
                    && !storage.contains(phys)
                    && !self.plane.is_failed(phys)
                    && !self.plane.is_offline(phys)
                {
                    return Some(self.cluster.node_of_disk(phys));
                }
            }
        }
        None
    }

    /// Refine a driver-level `DataLoss` into the client-visible error:
    /// if every copy is gone from the *media*, it really is data loss;
    /// if the bytes survive behind a partition, the request failed only
    /// on connectivity and must say so (and must not hang).
    pub(crate) fn classify_loss(&self, client: usize, lb: u64) -> IoError {
        let storage_slots = self.placer.slot_read_faults(&self.storage_faults());
        if matches!(self.layout.read_source(lb, &storage_slots), ReadSource::Lost) {
            return IoError::DataLoss { lb };
        }
        let attempts = 1 + self.cfg.max_retries;
        let mut addrs = vec![self.layout.locate_data(lb)];
        addrs.extend(self.layout.locate_images(lb));
        for a in addrs {
            let node = self.cluster.node_of_disk(self.placer.read_home(a).disk);
            if !self.partitions.reachable(client, node) {
                return IoError::Unreachable { node, attempts };
            }
        }
        // Unreachable through parity placement only.
        IoError::Unreachable { node: client, attempts }
    }

    /// Read `nblocks` logical blocks starting at `lb0` for node `client`.
    /// Returns the bytes (already materialized from the functional plane)
    /// and the timing plan.
    pub fn read(
        &mut self,
        client: usize,
        lb0: u64,
        nblocks: u64,
    ) -> Result<(Vec<u8>, Plan), IoError> {
        let adm = self.admit_read(lb0, nblocks)?;
        self.read_admitted(client, adm)
    }

    /// Execute a previously admitted read. A stamp one epoch behind is
    /// accepted while that epoch's migration is still in flight (pending
    /// blocks are served from their old home — the stale epoch's view);
    /// anything older fails with [`IoError::StaleEpoch`].
    pub fn read_admitted(
        &mut self,
        client: usize,
        adm: Admission,
    ) -> Result<(Vec<u8>, Plan), IoError> {
        let current = self.placer.epoch();
        let stale_ok = adm.epoch + 1 == current && self.placer.migration().is_some();
        if adm.epoch != current && !stale_ok {
            return Err(IoError::StaleEpoch { seen: adm.epoch, current });
        }
        let (lb0, nblocks) = (adm.lb0, adm.nblocks);

        // Client cache: a read whose whole range is resident is served
        // locally — driver overhead only, no disk or network traffic.
        // Misses snapshot the invalidation epoch *before* the array read
        // so a concurrent grant's invalidation always beats the fill.
        if let Some(bytes) = self.cache_try_serve(client, lb0, nblocks) {
            let plan = seq(vec![self.ops().driver(client)]);
            if self.tracer.is_some() {
                let at = self.next_op_tick();
                self.trace_access(
                    at,
                    hb::client_actor(client),
                    hb::sios_cell(lb0),
                    nblocks,
                    AccessKind::Read,
                );
            }
            return Ok((bytes, plan));
        }
        let fill = self.cache_begin_fill();
        let bs = self.block_size() as usize;
        let mut out = vec![0u8; nblocks as usize * bs];

        // Client module: route around everything this client cannot reach.
        let eff = self.effective_faults(client);
        let eff_slots = self.placer.slot_read_faults(&eff);
        let storage = self.storage_faults();

        // Partition: blocks with a usable primary are balanced at run
        // granularity; the rest fall back to the degraded paths. A
        // primary that is alive but behind a partition costs one timed-out
        // attempt before the client retries against a replica.
        let mut healthy = Vec::new();
        let mut forced_images = Vec::new();
        let mut reconstructs = Vec::new();
        let mut blocked: Option<usize> = None;
        for lb in lb0..lb0 + nblocks {
            let d = self.layout.locate_data(lb);
            if !eff_slots.contains(d.disk) {
                healthy.push((lb, d));
                continue;
            }
            let serving = self.placer.read_home(d).disk;
            if !storage.contains(serving)
                && !self.plane.is_failed(serving)
                && !self.plane.is_offline(serving)
            {
                blocked.get_or_insert(self.cluster.node_of_disk(serving));
            }
            match self.layout.read_source(lb, &eff_slots) {
                ReadSource::Primary(a) | ReadSource::Image(a) => forced_images.push((lb, a)),
                ReadSource::Reconstruct { siblings, parity } => {
                    reconstructs.push((lb, siblings, parity))
                }
                ReadSource::Lost => return Err(self.classify_loss(client, lb)),
            }
        }
        if let Some(node) = blocked {
            if self.cfg.max_retries == 0 {
                return Err(IoError::Unreachable { node, attempts: 1 });
            }
            self.timeouts += 1;
            self.failovers += 1;
        }

        // Front end: run-level replica selection for the healthy primaries.
        let block_size = self.block_size();
        let mut physical: Vec<(usize, u64, u64, Vec<u64>)> = Vec::new(); // slot disk, start, len, lbs
        for run in merge_runs(healthy) {
            let choice =
                self.balancer.balance_run(self.layout.as_ref(), &eff_slots, block_size, &run);
            match choice {
                Some((disk, start)) => physical.push((disk, start, run.len(), run.lbs)),
                None => physical.push((run.disk, run.start, run.len(), run.lbs)),
            }
        }

        // Functional reads (slot addresses resolved per block through the
        // placer, so pending-migration blocks come from their old home).
        for (disk, start, _, lbs) in &physical {
            for (i, &lb) in lbs.iter().enumerate() {
                let off = (lb - lb0) as usize * bs;
                let h = self.placer.read_home(raidx_core::BlockAddr::new(*disk, start + i as u64));
                self.plane.read(h.disk, h.block, &mut out[off..off + bs])?;
            }
        }
        for &(lb, a) in &forced_images {
            let off = (lb - lb0) as usize * bs;
            let h = self.placer.read_home(a);
            self.plane.read(h.disk, h.block, &mut out[off..off + bs])?;
        }
        for (lb, siblings, parity) in &reconstructs {
            let off = (*lb - lb0) as usize * bs;
            let ph = self.placer.read_home(*parity);
            let mut acc = self.plane.read_owned(ph.disk, ph.block)?;
            for (_, a) in siblings {
                let h = self.placer.read_home(*a);
                let sib = self.plane.read_owned(h.disk, h.block)?;
                xor_into(&mut acc, &sib);
            }
            out[off..off + bs].copy_from_slice(&acc);
        }

        // Timing plan (runs charged to the disk serving their first block).
        let ops = self.ops();
        let mut branches: Vec<Plan> = Vec::new();
        for (disk, start, len, _) in &physical {
            let h = self.placer.read_home(raidx_core::BlockAddr::new(*disk, *start));
            branches.push(ops.read_run(client, h.disk, h.block, *len));
        }
        for run in merge_runs(forced_images) {
            let h = self.placer.read_home(raidx_core::BlockAddr::new(run.disk, run.start));
            branches.push(ops.read_run(client, h.disk, h.block, run.len()));
        }
        for (_, siblings, parity) in &reconstructs {
            let mut reads: Vec<Plan> = siblings
                .iter()
                .map(|(_, a)| {
                    let h = self.placer.read_home(*a);
                    ops.read_run(client, h.disk, h.block, 1)
                })
                .collect();
            let hp = self.placer.read_home(*parity);
            reads.push(ops.read_run(client, hp.disk, hp.block, 1));
            let n_in = reads.len() as u64 + 1;
            branches.push(seq(vec![par(reads), ops.xor(client, n_in * bs as u64)]));
        }
        let mut chain = vec![ops.driver(client)];
        if blocked.is_some() {
            // The failed attempt against the unresponsive primary: the
            // client waits out the full request timeout before retrying
            // against the replica — failover is bounded, never a hang.
            chain.push(delay(self.cfg.request_timeout));
        }
        chain.push(par(branches));
        if self.tracer.is_some() {
            // Reads are lock-free by design; the trace point lets the
            // analyzer's (off-by-default) read/write auditor see them.
            let at = self.next_op_tick();
            self.trace_access(
                at,
                hb::client_actor(client),
                hb::sios_cell(lb0),
                nblocks,
                AccessKind::Read,
            );
        }
        if let Some(t) = fill {
            self.cache_commit_fill(client, t, lb0, &out);
        }
        Ok((out, seq(chain)))
    }
}

// The partition/failover request-path tests live in
// `crates/cdd/tests/partition.rs` (integration tests), keeping this
// module within the static-analysis size cap.
