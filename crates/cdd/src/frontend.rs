//! Front-end / admission layer of the CDD pipeline (the paper's *client
//! module*).
//!
//! Everything that happens before a request is handed to a scheme driver
//! lives here: admission (range and length validation, shared verbatim by
//! [`crate::IoSystem`] and the `nfs_sim::NfsSystem` baseline so both
//! stores reject malformed I/O with the same [`IoError`] variants), run
//! coalescing of adjacent blocks (re-exported from [`crate::runs`]), and
//! replica selection for reads ([`ReadBalancer`]).

use raidx_core::{FaultSet, Layout, ReadSource};

use crate::config::ReadBalance;
use crate::error::IoError;
pub use crate::runs::{merge_runs, Run};

/// An admitted request, stamped with the placement epoch the client saw
/// at admission time.
///
/// The CDD checks the stamp when the request executes: writes must carry
/// the *current* epoch (a transition between admission and execution
/// fails them with [`IoError::StaleEpoch`] so the client re-admits
/// against the new map), while reads may trail by exactly one epoch as
/// long as that epoch's migration is still draining — the data path
/// serves pending blocks from their old physical home, which *is* the
/// stale epoch's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// First logical block of the request.
    pub lb0: u64,
    /// Number of blocks.
    pub nblocks: u64,
    /// Placement epoch of the client's view at admission.
    pub epoch: u64,
}

/// Reject a `[lb0, lb0 + nblocks)` request that reaches past `capacity`.
///
/// The shared admission check of every block store: the reported
/// [`IoError::OutOfRange`] names the last requested block and the store's
/// capacity, identically for the CDD array and the NFS baseline.
pub fn validate_range(lb0: u64, nblocks: u64, capacity: u64) -> Result<(), IoError> {
    match lb0.checked_add(nblocks) {
        Some(end) if end <= capacity => Ok(()),
        _ => {
            Err(IoError::OutOfRange { lb: lb0.saturating_add(nblocks.saturating_sub(1)), capacity })
        }
    }
}

/// Admit a write of `len` bytes at `lb0`: the buffer must be a non-empty
/// whole number of `block_size`-byte blocks and fit below `capacity`.
/// Returns the block count.
pub fn validate_write(
    block_size: usize,
    capacity: u64,
    lb0: u64,
    len: usize,
) -> Result<u64, IoError> {
    if len == 0 || !len.is_multiple_of(block_size.max(1)) {
        return Err(IoError::BadLength { expected: block_size.max(1), got: len });
    }
    let nblocks = (len / block_size.max(1)) as u64;
    validate_range(lb0, nblocks, capacity)?;
    Ok(nblocks)
}

/// Run-granularity replica selection for reads (the paper's announced
/// "I/O load balancing" follow-up, implemented in the client module).
///
/// Owns the per-disk dispatched-byte counters that drive the
/// [`ReadBalance::LeastLoaded`] policy; the layout and fault set are
/// borrowed per decision so the balancer itself carries no array state.
#[derive(Debug)]
pub struct ReadBalancer {
    policy: ReadBalance,
    /// Bytes of read traffic dispatched per disk.
    read_load: Vec<u64>,
}

impl ReadBalancer {
    /// A balancer over `ndisks` disks following `policy`.
    pub fn new(policy: ReadBalance, ndisks: usize) -> Self {
        ReadBalancer { policy, read_load: vec![0; ndisks] }
    }

    /// The policy this balancer follows.
    pub fn policy(&self) -> ReadBalance {
        self.policy
    }

    /// The image addresses of a primary run, if they form one healthy
    /// contiguous run on a single disk (the condition under which a whole
    /// run can be redirected to the mirror copy).
    pub fn image_run_of(layout: &dyn Layout, faults: &FaultSet, run: &Run) -> Option<(usize, u64)> {
        let first = layout.locate_images(run.lbs[0]);
        let first = first.first()?;
        if faults.contains(first.disk) {
            return None;
        }
        for (i, &lb) in run.lbs.iter().enumerate() {
            let imgs = layout.locate_images(lb);
            let img = imgs.first()?;
            if img.disk != first.disk || img.block != first.block + i as u64 {
                return None;
            }
        }
        Some((first.disk, first.block))
    }

    /// Decide whether a healthy-primary run should be served by its
    /// mirror copy, per the configured balancing policy. Returns the
    /// redirected (disk, start) when it should; either way the chosen
    /// disk's load counter absorbs the run's payload.
    pub fn balance_run(
        &mut self,
        layout: &dyn Layout,
        faults: &FaultSet,
        block_size: u64,
        run: &Run,
    ) -> Option<(usize, u64)> {
        let payload = run.len() * block_size;
        let choice = match self.policy {
            ReadBalance::PrimaryOnly => None,
            ReadBalance::LayoutPreference => {
                if matches!(layout.read_source(run.lbs[0], faults), ReadSource::Image(_)) {
                    Self::image_run_of(layout, faults, run)
                } else {
                    None
                }
            }
            ReadBalance::LeastLoaded => match Self::image_run_of(layout, faults, run) {
                Some((img_disk, start)) if self.read_load[img_disk] < self.read_load[run.disk] => {
                    Some((img_disk, start))
                }
                _ => None,
            },
        };
        match choice {
            Some((disk, _)) => self.read_load[disk] += payload,
            None => self.read_load[run.disk] += payload,
        }
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_validation_reports_last_block() {
        assert!(validate_range(0, 10, 10).is_ok());
        assert!(validate_range(10, 0, 10).is_ok());
        match validate_range(8, 4, 10) {
            Err(IoError::OutOfRange { lb, capacity }) => {
                assert_eq!(lb, 11);
                assert_eq!(capacity, 10);
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn range_validation_survives_overflow() {
        assert!(matches!(
            validate_range(u64::MAX, 2, 100),
            Err(IoError::OutOfRange { capacity: 100, .. })
        ));
    }

    #[test]
    fn write_admission_checks_length_then_range() {
        assert_eq!(validate_write(512, 100, 0, 1024).unwrap(), 2);
        assert!(matches!(
            validate_write(512, 100, 0, 100),
            Err(IoError::BadLength { expected: 512, got: 100 })
        ));
        assert!(matches!(validate_write(512, 100, 0, 0), Err(IoError::BadLength { .. })));
        assert!(matches!(
            validate_write(512, 4, 3, 1024),
            Err(IoError::OutOfRange { lb: 4, capacity: 4 })
        ));
    }

    #[test]
    fn primary_only_never_redirects() {
        let layout = raidx_core::layout_for(raidx_core::Arch::Raid10, 4, 1, 128);
        let mut b = ReadBalancer::new(ReadBalance::PrimaryOnly, 4);
        let run = Run { disk: 0, start: 0, lbs: vec![0, 1] };
        assert!(b.balance_run(layout.as_ref(), &FaultSet::none(), 512, &run).is_none());
    }

    #[test]
    fn least_loaded_alternates_copies() {
        let layout = raidx_core::layout_for(raidx_core::Arch::Raid10, 4, 1, 128);
        let faults = FaultSet::none();
        let mut b = ReadBalancer::new(ReadBalance::LeastLoaded, 4);
        let run = Run { disk: 0, start: 0, lbs: vec![0] };
        // First read stays on the (equally loaded) primary, loading it;
        // the second redirects to the now less-loaded image.
        assert!(b.balance_run(layout.as_ref(), &faults, 512, &run).is_none());
        assert!(b.balance_run(layout.as_ref(), &faults, 512, &run).is_some());
    }

    #[test]
    fn dead_image_disk_blocks_redirection() {
        let layout = raidx_core::layout_for(raidx_core::Arch::Raid10, 4, 1, 128);
        let run = Run { disk: 0, start: 0, lbs: vec![0] };
        let img = layout.locate_images(0)[0].disk;
        let mut faults = FaultSet::none();
        faults.insert(img);
        assert!(ReadBalancer::image_run_of(layout.as_ref(), &faults, &run).is_none());
    }
}
