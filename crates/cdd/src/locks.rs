//! The replicated lock-group table of the CDD consistency modules.
//!
//! Each record corresponds to a group of data blocks granted to a specific
//! CDD client with write permission; grants and releases are atomic (the
//! paper replicates the table among all consistency modules — here one
//! logical copy holds the authoritative state and the timing model charges
//! the broadcast round).

/// A write-permission grant over a contiguous logical block range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRecord {
    /// The client CDD (node index) holding the grant.
    pub owner: usize,
    /// First logical block of the group.
    pub start: u64,
    /// Number of blocks.
    pub len: u64,
}

impl LockRecord {
    fn overlaps(&self, start: u64, len: u64) -> bool {
        self.start < start + len && start < self.start + self.len
    }
}

/// Handle to a granted lock group (release token).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockHandle(usize);

/// Why [`LockGroupTable::try_release`] refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseError {
    /// The handle's slot index was never allocated.
    Stale,
    /// The slot exists but holds no grant — a double release or a release
    /// without a matching grant.
    NotHeld,
}

/// Why a lock-group acquisition failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockConflict {
    /// Who holds the overlapping grant.
    pub holder: usize,
    /// The overlapping record.
    pub start: u64,
    /// Its length.
    pub len: u64,
}

/// One entry of a recorded grant/release trace (see
/// [`LockGroupTable::enable_trace`]). The `raidx-verify` lock-order
/// analyzer replays these to detect cyclic acquisition orders, double
/// grants and leaked groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockEvent {
    /// A grant was issued.
    Grant {
        /// Client that received the grant.
        owner: usize,
        /// First block of the group.
        start: u64,
        /// Blocks in the group.
        len: u64,
        /// Slot index of the grant (matches the release event).
        slot: usize,
    },
    /// A grant was released.
    Release {
        /// Client releasing.
        owner: usize,
        /// Slot index being released.
        slot: usize,
    },
    /// An acquisition was rejected because of an overlapping grant.
    Conflict {
        /// Client that was refused.
        owner: usize,
        /// Client holding the overlapping grant.
        holder: usize,
        /// First block of the refused request.
        start: u64,
        /// Blocks requested.
        len: u64,
    },
}

/// The lock-group table.
#[derive(Debug, Default, Clone)]
pub struct LockGroupTable {
    slots: Vec<Option<LockRecord>>,
    free: Vec<usize>,
    grants: u64,
    conflicts: u64,
    trace: Option<Vec<LockEvent>>,
}

impl LockGroupTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically acquire write permission on `[start, start+len)` for
    /// `owner`. Overlapping grants to *other* owners conflict; a client's
    /// own overlapping grants coexist (write permission is per client).
    pub fn acquire(
        &mut self,
        owner: usize,
        start: u64,
        len: u64,
    ) -> Result<LockHandle, LockConflict> {
        assert!(len > 0, "empty lock group");
        for rec in self.slots.iter().flatten() {
            if rec.owner != owner && rec.overlaps(start, len) {
                self.conflicts += 1;
                if let Some(t) = &mut self.trace {
                    t.push(LockEvent::Conflict { owner, holder: rec.owner, start, len });
                }
                return Err(LockConflict { holder: rec.owner, start: rec.start, len: rec.len });
            }
        }
        Ok(self.insert_grant(owner, start, len))
    }

    /// Grant `[start, start+len)` to `owner` **without** the overlap
    /// check. This is a defect-injection hook for the `raidx-model`
    /// checker (planting a double-grant bug the table invariant must
    /// catch); production protocol code must always go through
    /// [`LockGroupTable::acquire`].
    pub fn acquire_unchecked(&mut self, owner: usize, start: u64, len: u64) -> LockHandle {
        assert!(len > 0, "empty lock group");
        self.insert_grant(owner, start, len)
    }

    fn insert_grant(&mut self, owner: usize, start: u64, len: u64) -> LockHandle {
        self.grants += 1;
        let rec = LockRecord { owner, start, len };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(rec);
                i
            }
            None => {
                self.slots.push(Some(rec));
                self.slots.len() - 1
            }
        };
        if let Some(t) = &mut self.trace {
            t.push(LockEvent::Grant { owner, start, len, slot: idx });
        }
        LockHandle(idx)
    }

    /// The record currently held under `h`, if the slot is live.
    pub fn record_of(&self, h: LockHandle) -> Option<&LockRecord> {
        self.slots.get(h.0).and_then(Option::as_ref)
    }

    /// Atomically release a grant.
    pub fn release(&mut self, h: LockHandle) {
        match self.try_release(h) {
            Ok(()) => {}
            Err(ReleaseError::Stale) => panic!("stale lock handle"),
            Err(ReleaseError::NotHeld) => panic!("double release"),
        }
    }

    /// Non-panicking release: reports a stale handle or a release of a
    /// group that is not currently held (double release / release without
    /// grant) instead of aborting.
    pub fn try_release(&mut self, h: LockHandle) -> Result<(), ReleaseError> {
        let slot = self.slots.get_mut(h.0).ok_or(ReleaseError::Stale)?;
        let rec = slot.take().ok_or(ReleaseError::NotHeld)?;
        self.free.push(h.0);
        if let Some(t) = &mut self.trace {
            t.push(LockEvent::Release { owner: rec.owner, slot: h.0 });
        }
        Ok(())
    }

    /// Start recording a grant/release trace (clears any previous one).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<LockEvent> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Number of grants issued over the table's lifetime.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Number of rejected (conflicting) acquisitions.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Currently held records (diagnostics).
    pub fn held(&self) -> impl Iterator<Item = &LockRecord> {
        self.slots.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_grants_coexist() {
        let mut t = LockGroupTable::new();
        let a = t.acquire(0, 0, 10).unwrap();
        let b = t.acquire(1, 10, 10).unwrap();
        assert_eq!(t.held().count(), 2);
        t.release(a);
        t.release(b);
        assert_eq!(t.held().count(), 0);
    }

    #[test]
    fn overlap_conflicts_across_owners() {
        let mut t = LockGroupTable::new();
        let _a = t.acquire(0, 5, 10).unwrap();
        let err = t.acquire(1, 14, 2).unwrap_err();
        assert_eq!(err.holder, 0);
        assert_eq!(t.conflicts(), 1);
        // Adjacent (non-overlapping) is fine.
        assert!(t.acquire(1, 15, 5).is_ok());
    }

    #[test]
    fn same_owner_overlap_allowed() {
        let mut t = LockGroupTable::new();
        let _a = t.acquire(3, 0, 100).unwrap();
        assert!(t.acquire(3, 50, 100).is_ok());
    }

    #[test]
    fn release_frees_range() {
        let mut t = LockGroupTable::new();
        let a = t.acquire(0, 0, 10).unwrap();
        assert!(t.acquire(1, 0, 10).is_err());
        t.release(a);
        assert!(t.acquire(1, 0, 10).is_ok());
        assert_eq!(t.grants(), 2);
    }

    #[test]
    fn slots_are_reused() {
        let mut t = LockGroupTable::new();
        for _ in 0..100 {
            let h = t.acquire(0, 0, 1).unwrap();
            t.release(h);
        }
        assert!(t.slots.len() <= 2, "table grew to {}", t.slots.len());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut t = LockGroupTable::new();
        let h = t.acquire(0, 0, 1).unwrap();
        t.release(h);
        t.release(h);
    }

    #[test]
    fn try_release_reports_double_release() {
        let mut t = LockGroupTable::new();
        let h = t.acquire(0, 0, 1).unwrap();
        assert_eq!(t.try_release(h), Ok(()));
        assert_eq!(t.try_release(h), Err(ReleaseError::NotHeld));
    }

    #[test]
    fn try_release_reports_release_without_grant() {
        let mut t = LockGroupTable::new();
        // A handle forged for a slot that was never allocated.
        assert_eq!(t.try_release(LockHandle(5)), Err(ReleaseError::Stale));
    }

    #[test]
    fn trace_records_grant_release_conflict() {
        let mut t = LockGroupTable::new();
        t.enable_trace();
        let h = t.acquire(0, 0, 10).unwrap();
        assert!(t.acquire(1, 5, 2).is_err());
        t.release(h);
        let trace = t.take_trace();
        assert_eq!(
            trace,
            vec![
                LockEvent::Grant { owner: 0, start: 0, len: 10, slot: 0 },
                LockEvent::Conflict { owner: 1, holder: 0, start: 5, len: 2 },
                LockEvent::Release { owner: 0, slot: 0 },
            ]
        );
        // Recording stays enabled after take_trace.
        let h = t.acquire(2, 100, 1).unwrap();
        t.release(h);
        assert_eq!(t.take_trace().len(), 2);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut t = LockGroupTable::new();
        let h = t.acquire(0, 0, 1).unwrap();
        t.release(h);
        assert!(t.take_trace().is_empty());
    }
}
