//! Client-side block cache with SIOS lock-group coherence.
//!
//! Each client node keeps a private cache of logical block contents in
//! front of [`crate::datapath`]'s read path. Correctness rides the
//! paper's consistency module: every write already acquires its block
//! range in the replicated lock-group table, so the write grant is the
//! natural invalidation broadcast — while the grant is held, the writer
//! invalidates the written range in **every** client's cache
//! (write-invalidate, the protocol [`crate::store::BlockStore`] names as
//! what makes client caching safe). Three further events flush cached
//! extents wholesale:
//!
//! * a membership epoch bump (`add_disk`/`remove_disk`/`replace_disk`)
//!   — cached fills predate the new [`cluster::ClusterMap`] binding, so
//!   they are dropped exactly like a stale-epoch admission
//!   ([`crate::IoError::StaleEpoch`] semantics);
//! * a NIC partition or node crash — a client cut off from the
//!   replicated table can no longer receive invalidations, so its cache
//!   is dropped the moment connectivity is lost;
//! * an explicit [`crate::IoSystem`] flush (tests, recovery drivers).
//!
//! **Invalidation epochs.** The shared [`CacheSet`] carries a monotone
//! invalidation epoch, bumped on every invalidation or flush. A fill is
//! two-phase: [`CacheSet::begin_fill`] snapshots the epoch before the
//! array read, [`CacheSet::commit_fill`] inserts only those blocks not
//! invalidated since the snapshot — a fill racing an invalidation loses,
//! never the other way around. Eviction is deterministic LRU by logical
//! time (a per-[`CacheSet`] monotone use counter, not wall or sim time).

use std::collections::BTreeMap;

use sim_core::metrics::MetricsRegistry;

use crate::system::IoSystem;

/// Tunables of the per-client block cache (see
/// [`crate::CddConfig::cache`]; `None` there disables caching entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity of each client's cache, in logical blocks. Zero is legal
    /// (every lookup misses, every fill is dropped).
    pub capacity_blocks: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity_blocks: 128 }
    }
}

/// Deterministic counters of the whole cache set (all clients).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Blocks served from a client's cache.
    pub hits: u64,
    /// Blocks fetched from the array because they were not cached.
    pub misses: u64,
    /// Cached blocks dropped by a write grant's invalidation.
    pub invalidations: u64,
    /// Cached blocks evicted to make room (LRU by logical time).
    pub evictions: u64,
    /// Whole-cache flushes (membership epoch bumps, partitions, crashes).
    pub flushes: u64,
    /// Fill blocks dropped because the range was invalidated between
    /// [`CacheSet::begin_fill`] and [`CacheSet::commit_fill`].
    pub fill_aborts: u64,
}

impl CacheStats {
    /// Export every counter into `reg` under the `cdd.cache_*` names —
    /// the bridge from the cache to the [`sim_core::metrics`] plane the
    /// exporters and the perfbench harness read.
    pub fn export_into(&self, reg: &mut MetricsRegistry) {
        reg.set_counter("cdd.cache_hits", self.hits);
        reg.set_counter("cdd.cache_misses", self.misses);
        reg.set_counter("cdd.cache_invalidations", self.invalidations);
        reg.set_counter("cdd.cache_evictions", self.evictions);
        reg.set_counter("cdd.cache_flushes", self.flushes);
        reg.set_counter("cdd.cache_fill_aborts", self.fill_aborts);
    }
}

/// Epoch snapshot taken before an array read whose result may be cached.
#[derive(Debug, Clone, Copy)]
pub struct FillTicket {
    epoch: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Vec<u8>,
    last_use: u64,
}

/// One client's private cache: logical block → bytes, LRU by the shared
/// logical clock.
#[derive(Debug, Clone, Default)]
struct ClientCache {
    entries: BTreeMap<u64, Entry>,
}

/// The per-client caches plus the shared coherence state (invalidation
/// epoch, per-block invalidation stamps, counters).
#[derive(Debug, Clone)]
pub struct CacheSet {
    cfg: CacheConfig,
    clients: Vec<ClientCache>,
    /// Logical LRU clock: bumped on every lookup touch and fill.
    clock: u64,
    /// Monotone invalidation epoch, bumped per invalidation event.
    inv_epoch: u64,
    /// Per-block epoch of the last invalidation touching it. Bounded by
    /// the written region (entries are overwritten, never duplicated).
    last_inv: BTreeMap<u64, u64>,
    /// Epoch at the most recent whole-cache flush (flushes invalidate
    /// everything, including in-flight fills of any block).
    last_flush: u64,
    stats: CacheStats,
}

impl CacheSet {
    /// Build empty caches for `clients` client nodes.
    pub fn new(cfg: CacheConfig, clients: usize) -> Self {
        CacheSet {
            cfg,
            clients: vec![ClientCache::default(); clients],
            clock: 0,
            inv_epoch: 0,
            last_inv: BTreeMap::new(),
            last_flush: 0,
            stats: CacheStats::default(),
        }
    }

    /// Deterministic counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Serve `[lb0, lb0+nblocks)` from `client`'s cache if **every**
    /// block is cached (whole-request admission: partial hits refetch
    /// the full range, which keeps the datapath's run planning intact).
    /// A hit touches each block's LRU stamp; a miss counts every block
    /// of the request as missed.
    pub fn lookup(&mut self, client: usize, lb0: u64, nblocks: u64, bs: usize) -> Option<Vec<u8>> {
        let cache = &mut self.clients[client];
        if (lb0..lb0 + nblocks).any(|lb| !cache.entries.contains_key(&lb)) {
            self.stats.misses += nblocks;
            return None;
        }
        let mut out = vec![0u8; nblocks as usize * bs];
        for lb in lb0..lb0 + nblocks {
            self.clock += 1;
            let e = cache.entries.get_mut(&lb)?;
            e.last_use = self.clock;
            out[(lb - lb0) as usize * bs..(lb - lb0 + 1) as usize * bs].copy_from_slice(&e.data);
        }
        self.stats.hits += nblocks;
        Some(out)
    }

    /// Snapshot the invalidation epoch before an array read whose bytes
    /// will be offered to [`CacheSet::commit_fill`].
    pub fn begin_fill(&self) -> FillTicket {
        FillTicket { epoch: self.inv_epoch }
    }

    /// Insert the blocks of a completed array read into `client`'s
    /// cache, skipping any block invalidated (or flushed away) since the
    /// ticket was taken — the invalidate-while-fill-pending race always
    /// resolves toward invalidation.
    pub fn commit_fill(&mut self, client: usize, t: FillTicket, lb0: u64, data: &[u8], bs: usize) {
        if self.cfg.capacity_blocks == 0 {
            return;
        }
        let nblocks = (data.len() / bs) as u64;
        for lb in lb0..lb0 + nblocks {
            let stale =
                self.last_flush > t.epoch || self.last_inv.get(&lb).is_some_and(|&e| e > t.epoch);
            if stale {
                self.stats.fill_aborts += 1;
                continue;
            }
            self.clock += 1;
            let clock = self.clock;
            let cache = &mut self.clients[client];
            let fresh = !cache.entries.contains_key(&lb);
            if fresh && cache.entries.len() >= self.cfg.capacity_blocks {
                // Deterministic LRU: evict the least-recently-used entry
                // (the logical clock never ties — it bumps per touch).
                if let Some(victim) =
                    cache.entries.iter().min_by_key(|(_, e)| e.last_use).map(|(&lb, _)| lb)
                {
                    cache.entries.remove(&victim);
                    self.stats.evictions += 1;
                }
            }
            let off = (lb - lb0) as usize * bs;
            cache.entries.insert(lb, Entry { data: data[off..off + bs].to_vec(), last_use: clock });
        }
    }

    /// Invalidate `[lb0, lb0+nblocks)` in **every** client's cache — the
    /// write-grant broadcast through the replicated table. Bumps the
    /// invalidation epoch and stamps each block so in-flight fills of the
    /// range abort at commit.
    pub fn invalidate(&mut self, lb0: u64, nblocks: u64) {
        self.inv_epoch += 1;
        for lb in lb0..lb0 + nblocks {
            self.last_inv.insert(lb, self.inv_epoch);
        }
        for cache in &mut self.clients {
            for lb in lb0..lb0 + nblocks {
                if cache.entries.remove(&lb).is_some() {
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Drop every client's cache (membership epoch bump — the cached
    /// fills predate the new cluster map, so `StaleEpoch` semantics
    /// demand they go). Also aborts every in-flight fill.
    pub fn flush_all(&mut self) {
        self.inv_epoch += 1;
        self.last_flush = self.inv_epoch;
        for cache in &mut self.clients {
            cache.entries.clear();
        }
        self.stats.flushes += 1;
    }

    /// Drop one client's cache (that node lost connectivity to the
    /// replicated table and can no longer see invalidations).
    pub fn flush_client(&mut self, client: usize) {
        if let Some(cache) = self.clients.get_mut(client) {
            cache.entries.clear();
        }
        self.inv_epoch += 1;
        self.last_flush = self.inv_epoch;
        self.stats.flushes += 1;
    }

    /// Blocks currently cached for `client`.
    pub fn cached_blocks(&self, client: usize) -> usize {
        self.clients.get(client).map_or(0, |c| c.entries.len())
    }
}

impl IoSystem {
    /// Whether the client-side cache is configured on.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Deterministic cache counters (`None` when caching is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| *c.stats())
    }

    /// Blocks currently cached for `client` (0 when caching is disabled).
    pub fn cached_blocks(&self, client: usize) -> usize {
        self.cache.as_ref().map_or(0, |c| c.cached_blocks(client))
    }

    /// Drop every client's cached extents (the hook membership epoch
    /// transitions call; public for recovery drivers and tests).
    pub fn cache_flush_all(&mut self) {
        if let Some(c) = self.cache.as_mut() {
            c.flush_all();
        }
    }

    /// Drop the cache of every client hosted on `node` (called when the
    /// node is partitioned or crashes — it can no longer observe the
    /// replicated table's invalidations).
    pub(crate) fn cache_flush_node(&mut self, node: usize) {
        if let Some(c) = self.cache.as_mut() {
            c.flush_client(node);
        }
    }

    /// Invalidate `[lb0, lb0+nblocks)` in every client's cache. Called
    /// under the write's lock-group grant, so the invalidation is
    /// ordered with the grant itself.
    pub(crate) fn cache_invalidate(&mut self, lb0: u64, nblocks: u64) {
        if let Some(c) = self.cache.as_mut() {
            c.invalidate(lb0, nblocks);
        }
    }

    /// Serve a read entirely from `client`'s cache if possible.
    pub(crate) fn cache_try_serve(&mut self, client: usize, lb0: u64, n: u64) -> Option<Vec<u8>> {
        let bs = self.cluster.cfg.block_size as usize;
        self.cache.as_mut().and_then(|c| c.lookup(client, lb0, n, bs))
    }

    /// Snapshot the invalidation epoch before a cache-missing array read.
    pub(crate) fn cache_begin_fill(&self) -> Option<FillTicket> {
        self.cache.as_ref().map(CacheSet::begin_fill)
    }

    /// Offer a completed array read's bytes to `client`'s cache.
    pub(crate) fn cache_commit_fill(&mut self, client: usize, t: FillTicket, lb0: u64, d: &[u8]) {
        let bs = self.cluster.cfg.block_size as usize;
        if let Some(c) = self.cache.as_mut() {
            c.commit_fill(client, t, lb0, d, bs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 4;

    fn set(cap: usize, clients: usize) -> CacheSet {
        CacheSet::new(CacheConfig { capacity_blocks: cap }, clients)
    }

    fn fill(c: &mut CacheSet, client: usize, lb0: u64, blocks: &[u8]) {
        let t = c.begin_fill();
        let data: Vec<u8> = blocks.iter().flat_map(|&b| [b; BS]).collect();
        c.commit_fill(client, t, lb0, &data, BS);
    }

    #[test]
    fn fill_then_lookup_hits_and_write_invalidates() {
        let mut c = set(8, 2);
        fill(&mut c, 0, 0, &[1, 2]);
        assert_eq!(c.lookup(0, 0, 2, BS), Some(vec![1, 1, 1, 1, 2, 2, 2, 2]));
        assert_eq!(c.lookup(1, 0, 2, BS), None, "caches are private per client");
        c.invalidate(1, 1);
        assert_eq!(c.lookup(0, 0, 2, BS), None, "partial overlap misses whole request");
        assert_eq!(c.lookup(0, 0, 1, BS), Some(vec![1; BS]), "untouched block survives");
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut c = set(2, 1);
        fill(&mut c, 0, 0, &[1]);
        fill(&mut c, 0, 1, &[2]);
        assert!(c.lookup(0, 0, 1, BS).is_some(), "touch block 0: block 1 is now LRU");
        fill(&mut c, 0, 2, &[3]);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(0, 1, 1, BS).is_none(), "block 1 was evicted");
        assert!(c.lookup(0, 0, 1, BS).is_some() && c.lookup(0, 2, 1, BS).is_some());
    }

    #[test]
    fn invalidation_between_begin_and_commit_aborts_the_fill() {
        let mut c = set(8, 1);
        let t = c.begin_fill();
        c.invalidate(0, 1);
        c.commit_fill(0, t, 0, &[9u8; 2 * BS], BS);
        assert!(c.lookup(0, 0, 1, BS).is_none(), "invalidated block must not be filled");
        assert_eq!(c.lookup(0, 1, 1, BS), Some(vec![9; BS]), "untouched block fills fine");
        assert_eq!(c.stats().fill_aborts, 1);
        // A flush aborts in-flight fills of *every* block.
        let t = c.begin_fill();
        c.flush_all();
        c.commit_fill(0, t, 4, &[7u8; BS], BS);
        assert!(c.lookup(0, 4, 1, BS).is_none());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = set(0, 1);
        fill(&mut c, 0, 0, &[1]);
        assert_eq!(c.lookup(0, 0, 1, BS), None);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.cached_blocks(0), 0);
    }
}
