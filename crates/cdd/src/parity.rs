//! The RAID-5 parity scheme driver, split out of [`crate::scheme`].
//!
//! Full stripes compute parity client-side and stream `n` writes;
//! partial stripes pay the four-operation read-modify-write (the
//! small-write problem); degraded stripes fall back to bare-data or
//! reconstruct-write paths, parking whatever copy could not be written.

use cluster::xor_into;
use raidx_core::{BlockAddr, WriteScheme};
use sim_core::plan::{par, seq};
use sim_core::Plan;

use crate::error::IoError;
use crate::runs::merge_runs;
use crate::scheme::{runs_to_writes, SchemeDriver, WriteCtx};

/// RAID-5 parity writes: full-stripe streaming or the four-op
/// read-modify-write, with degraded reconstruct-write paths.
pub struct ParityDriver;

impl SchemeDriver for ParityDriver {
    fn scheme(&self) -> WriteScheme {
        WriteScheme::Parity
    }

    fn write(
        &self,
        ctx: &mut WriteCtx<'_>,
        client: usize,
        lb0: u64,
        nblocks: u64,
        data: &[u8],
    ) -> Result<Plan, IoError> {
        let bs = ctx.block_size();
        let width = ctx.layout.stripe_width() as u64;
        // A block is unstorable only if both its data disk and its
        // stripe's parity disk are gone.
        for lb in lb0..lb0 + nblocks {
            let d = ctx.layout.locate_data(lb);
            let p = ctx.layout.locate_parity(lb).expect("parity layout"); // lint-ok(no-unwrap): parity drivers only run on parity layouts
            if ctx.faults.contains(d.disk) && ctx.faults.contains(p.disk) {
                return Err(IoError::DataLoss { lb });
            }
        }

        let mut full_data = Vec::new(); // data placements of full stripes
        let mut parity_writes = Vec::new(); // (stripe, parity addr)
        let mut rmw_plans = Vec::new();
        // Degraded reconstruct-writes: (lost block, surviving sibling
        // addrs to read, parity addr to write).
        let mut reconstruct_writes: Vec<(u64, Vec<BlockAddr>, BlockAddr)> = Vec::new();
        // Degraded data-only writes (parity disk dead).
        let mut bare_data = Vec::new();
        let mut xor_bytes = 0u64;

        let s_first = lb0 / width;
        let s_last = (lb0 + nblocks - 1) / width;
        for s in s_first..=s_last {
            let members = ctx.layout.stripe_blocks(s);
            let covered = members.iter().all(|&m| (lb0..lb0 + nblocks).contains(&m));
            if covered && members.len() == width as usize {
                // Full-stripe write: parity from the new data alone. A
                // dead data disk's block is represented by parity only;
                // a dead parity disk simply goes unmaintained.
                let mut parity = vec![0u8; bs];
                for &m in &members {
                    xor_into(&mut parity, ctx.slice(data, lb0, m));
                    let a = ctx.layout.locate_data(m);
                    if !ctx.faults.contains(a.disk) {
                        ctx.write_block(a, ctx.slice(data, lb0, m))?;
                        full_data.push((m, a));
                    } else {
                        ctx.park(a.disk, m);
                    }
                }
                let p = ctx.layout.locate_parity(members[0]).expect("parity"); // lint-ok(no-unwrap): parity drivers only run on parity layouts
                if !ctx.faults.contains(p.disk) {
                    ctx.write_block(p, &parity)?;
                    parity_writes.push((s, p));
                } else {
                    ctx.park(p.disk, members[0]);
                }
                xor_bytes += width * bs as u64;
            } else {
                // Partial stripe: per touched block.
                for &m in &members {
                    if !(lb0..lb0 + nblocks).contains(&m) {
                        continue;
                    }
                    let a = ctx.layout.locate_data(m);
                    let p = ctx.layout.locate_parity(m).expect("parity"); // lint-ok(no-unwrap): parity drivers only run on parity layouts
                    let d_ok = !ctx.faults.contains(a.disk);
                    let p_ok = !ctx.faults.contains(p.disk);
                    let newd = ctx.slice(data, lb0, m).to_vec();
                    match (d_ok, p_ok) {
                        (true, true) => {
                            // Healthy read-modify-write.
                            let old = ctx.read_block(a)?;
                            let mut new_parity = ctx.read_block(p)?;
                            xor_into(&mut new_parity, &old);
                            xor_into(&mut new_parity, &newd);
                            ctx.write_block(a, &newd)?;
                            ctx.write_block(p, &new_parity)?;
                            rmw_plans.push((m, a, p));
                        }
                        (true, false) => {
                            // Parity disk dead: data write only; park the
                            // stale parity for recomputation on recovery.
                            ctx.write_block(a, &newd)?;
                            ctx.park(p.disk, m);
                            bare_data.push((m, a));
                        }
                        (false, true) => {
                            // Reconstruct-write: the new block exists only
                            // through parity = new XOR surviving siblings.
                            ctx.park(a.disk, m);
                            let mut parity = newd;
                            let mut sibs = Vec::new();
                            for sib in ctx.layout.stripe_blocks(s) {
                                if sib == m {
                                    continue;
                                }
                                let sa = ctx.layout.locate_data(sib);
                                let bytes = ctx.read_block(sa)?;
                                xor_into(&mut parity, &bytes);
                                sibs.push(sa);
                            }
                            ctx.write_block(p, &parity)?;
                            reconstruct_writes.push((m, sibs, p));
                        }
                        (false, false) => unreachable!("checked above"),
                    }
                }
            }
        }

        let ops = ctx.ops();
        let mut branches = Vec::new();
        if !full_data.is_empty() {
            let data_plans = runs_to_writes(&ops, ctx.placer, client, &merge_runs(full_data), true);
            let parity_plans: Vec<Plan> = parity_writes
                .iter()
                .map(|&(_, p)| ops.write_run(client, ctx.phys(p.disk), p.block, 1, true))
                .collect();
            branches.push(seq(vec![
                ops.xor(client, xor_bytes),
                par(data_plans.into_iter().chain(parity_plans).collect()),
            ]));
        }
        for (_, a, p) in &rmw_plans {
            // The four-op small-write cycle: two reads, XOR, two writes.
            let (pa, pp) = (ctx.phys(a.disk), ctx.phys(p.disk));
            branches.push(seq(vec![
                par(vec![
                    ops.read_run(client, pa, a.block, 1),
                    ops.read_run(client, pp, p.block, 1),
                ]),
                ops.xor(client, 3 * bs as u64),
                par(vec![
                    ops.write_run(client, pa, a.block, 1, true),
                    ops.write_run(client, pp, p.block, 1, true),
                ]),
            ]));
        }
        for run in merge_runs(bare_data) {
            branches.push(ops.write_run(client, ctx.phys(run.disk), run.start, run.len(), true));
        }
        for (_, sibs, p) in &reconstruct_writes {
            // Degraded write: read every surviving sibling, XOR with the
            // new data, write the parity block.
            let reads: Vec<Plan> =
                sibs.iter().map(|a| ops.read_run(client, ctx.phys(a.disk), a.block, 1)).collect();
            branches.push(seq(vec![
                par(reads),
                ops.xor(client, width * bs as u64),
                ops.write_run(client, ctx.phys(p.disk), p.block, 1, true),
            ]));
        }
        Ok(par(branches))
    }
}
