#![warn(missing_docs)]
//! # cdd — cooperative disk drivers and the single I/O space
//!
//! The paper's enabling mechanism, reproduced in user space: every node's
//! CDD combines a *storage manager* (serves its local disks to peers), a
//! *client module* (redirects local requests to remote managers — device
//! masquerading) and a *consistency module* (a replicated lock-group table
//! granting block-range write permissions atomically). Together the CDDs
//! form a **single I/O space**: any node addresses any block of the
//! cluster-wide array with no central server.
//!
//! [`IoSystem`] is the entry point: it executes logical reads/writes for
//! any client node, on any of the five layouts, producing both the real
//! data movement (functional plane) and the timing [`sim_core::Plan`]
//! (simulation plane). It also executes disk failure and rebuild.
//!
//! ## Module map — the layered request pipeline
//!
//! A request flows top to bottom (see DESIGN.md, "CDD pipeline"):
//!
//! | module | layer |
//! |---|---|
//! | [`frontend`] | front end / admission: range + length validation (shared with `nfs_sim`), run coalescing, read replica selection |
//! | [`cache`] | per-client block cache in front of the read path, kept coherent by write-grant invalidations and epoch flushes |
//! | [`locks`] | consistency module: the replicated lock-group table |
//! | [`scheme`] | scheme drivers: one [`scheme::SchemeDriver`] per [`raidx_core::WriteScheme`] (plain / mirror; parity in [`parity`]) |
//! | [`image_queue`] | data plane write-behind: the bounded OSM [`image_queue::ImageQueue`] |
//! | [`placer`] | epoch-versioned slot→physical placement ([`placer::Placer`] over [`cluster::ClusterMap`]) |
//! | [`system`] | the [`IoSystem`] state — configuration, planes, placer, ledgers |
//! | [`datapath`] | the request pipeline: admission stamping, locked writes, translated reads |
//! | [`membership`] | fault injection hooks and epoch transitions (add/remove/replace disks) |
//! | [`rebalance`] | incremental migration draining an epoch transition's pending set |
//! | [`maintenance`] | scrub and resumable rebuild (outside the request pipeline) |
//! | [`resync`] | transient recovery: restoring the blocks parked by degraded writes |
//! | [`fault`] | deterministic mid-workload fault injection ([`FaultInjector`]) |
//!
//! Supporting modules: [`config`] (tunables, including the
//! [`CddConfig::max_image_backlog`] backpressure bound), [`error`] (the
//! shared [`IoError`]), [`ops`] (plan builders), [`runs`] (coalescing),
//! [`store`] (the [`BlockStore`] abstraction over CDD and NFS),
//! [`scenarios`] + [`proto`] (model-checking scenarios and their
//! explorable compilation, micro-steps in the private `compile` module) and [`testkit`] (shared test/bench
//! constructors).

pub mod cache;
mod compile;
pub mod config;
pub mod datapath;
pub mod error;
pub mod fault;
pub mod frontend;
pub mod image_queue;
pub mod locks;
pub mod maintenance;
pub mod membership;
pub mod ops;
pub mod parity;
pub mod placer;
pub mod proto;
pub mod rebalance;
pub mod resync;
pub mod runs;
pub mod scenarios;
pub mod scheme;
pub mod store;
pub mod system;
pub mod testkit;

pub use cache::{CacheConfig, CacheStats};
pub use config::{CddConfig, ReadBalance};
pub use error::IoError;
pub use fault::{FaultEvent, FaultInjector};
pub use frontend::{Admission, ReadBalancer};
pub use image_queue::{ImageQueue, PendingImage};
pub use locks::{LockConflict, LockEvent, LockGroupTable, LockHandle, LockRecord, ReleaseError};
pub use ops::OpBuilder;
pub use placer::{Migration, Placer};
pub use proto::{CddModel, Defect, HistOp, OpRecord, ProtoOp, ProtoState, Scenario};
pub use rebalance::RebalanceOutcome;
pub use runs::{merge_runs, Run};
pub use scheme::{driver_for, SchemeDriver, WriteCtx};
pub use store::BlockStore;
pub use system::IoSystem;
