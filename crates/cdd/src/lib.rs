#![warn(missing_docs)]
//! # cdd — cooperative disk drivers and the single I/O space
//!
//! The paper's enabling mechanism, reproduced in user space: every node's
//! CDD combines a *storage manager* (serves its local disks to peers), a
//! *client module* (redirects local requests to remote managers — device
//! masquerading) and a *consistency module* (a replicated lock-group table
//! granting block-range write permissions atomically). Together the CDDs
//! form a **single I/O space**: any node addresses any block of the
//! cluster-wide array with no central server.
//!
//! [`IoSystem`] is the entry point: it executes logical reads/writes for
//! any client node, on any of the five layouts, producing both the real
//! data movement (functional plane) and the timing [`sim_core::Plan`]
//! (simulation plane). It also executes disk failure and rebuild.

pub mod config;
pub mod locks;
pub mod ops;
pub mod proto;
pub mod runs;
pub mod store;
pub mod system;

pub use config::{CddConfig, ReadBalance};
pub use locks::{LockConflict, LockEvent, LockGroupTable, LockHandle, LockRecord, ReleaseError};
pub use ops::OpBuilder;
pub use proto::{CddModel, Defect, HistOp, OpRecord, ProtoOp, ProtoState, Scenario};
pub use runs::{merge_runs, Run};
pub use store::BlockStore;
pub use system::{IoError, IoSystem};
