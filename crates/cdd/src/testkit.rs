//! Shared construction helpers for tests, benches and experiments.
//!
//! Nearly every test in the workspace opens with the same four lines:
//! build an [`Engine`], shape a [`ClusterConfig`], construct an
//! [`IoSystem`] with the default [`CddConfig`]. These constructors
//! deduplicate that boilerplate; they are ordinary public functions (not
//! `cfg(test)`) so downstream crates' tests and benches can use them.

use cluster::ClusterConfig;
use raidx_core::Arch;
use sim_core::Engine;

use crate::config::CddConfig;
use crate::system::IoSystem;

/// Build `arch` over an explicit cluster config with an explicit CDD
/// config. The most general constructor; the others delegate here.
pub fn build_with(cc: ClusterConfig, arch: Arch, cfg: CddConfig) -> (Engine, IoSystem) {
    let mut engine = Engine::new();
    let sys = IoSystem::new(&mut engine, cc, arch, cfg);
    (engine, sys)
}

/// Build `arch` over an explicit cluster config with the default CDD
/// config.
pub fn build(cc: ClusterConfig, arch: Arch) -> (Engine, IoSystem) {
    build_with(cc, arch, CddConfig::default())
}

/// Build `arch` on the paper's Trojans-class cluster with defaults —
/// the standard workload/bench setup.
pub fn trojans(arch: Arch) -> (Engine, IoSystem) {
    build(ClusterConfig::trojans(), arch)
}

/// Build `arch` on the Trojans-class cluster with a custom per-disk
/// capacity (benches that write far need bigger platters).
pub fn trojans_with_capacity(arch: Arch, disk_capacity: u64) -> (Engine, IoSystem) {
    let mut cc = ClusterConfig::trojans();
    cc.disk.capacity = disk_capacity;
    build(cc, arch)
}

/// Build `arch` on an `nodes × disks_per_node` array with `disk_capacity`
/// bytes per disk — the standard small-cluster test setup.
pub fn shape(
    nodes: usize,
    disks_per_node: usize,
    disk_capacity: u64,
    arch: Arch,
) -> (Engine, IoSystem) {
    let mut cc = ClusterConfig::shape(nodes, disks_per_node);
    cc.disk.capacity = disk_capacity;
    build(cc, arch)
}

/// Like [`shape`], with a custom CDD config.
pub fn shape_with(
    nodes: usize,
    disks_per_node: usize,
    disk_capacity: u64,
    arch: Arch,
    cfg: CddConfig,
) -> (Engine, IoSystem) {
    let mut cc = ClusterConfig::shape(nodes, disks_per_node);
    cc.disk.capacity = disk_capacity;
    build_with(cc, arch, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_working_systems() {
        let (_e, s) = trojans(Arch::RaidX);
        assert_eq!(s.cluster.cfg.nodes, ClusterConfig::trojans().nodes);
        let (_e, mut s) = shape(4, 1, 4 << 20, Arch::Raid5);
        let bs = s.block_size() as usize;
        s.write(0, 0, &vec![1u8; bs]).unwrap();
        let (got, _) = s.read(1, 0, 1).unwrap();
        assert_eq!(got, vec![1u8; bs]);
        let (_e, s) = shape_with(
            4,
            1,
            4 << 20,
            Arch::RaidX,
            CddConfig { max_image_backlog: Some(4), ..CddConfig::default() },
        );
        assert_eq!(s.pending_image_blocks(), 0);
    }
}
