//! Plan builders for individual CDD operations.
//!
//! Each builder assembles the full path of one storage-manager interaction:
//! client driver dispatch, control/data messages across the interconnect
//! (or a local fast path — the device-masquerading case), the owner node's
//! SCSI bus, and the disk itself.

use cluster::Cluster;
use sim_core::plan::{par, seq, use_res};
use sim_core::{Demand, Plan, SimDuration};
use sim_net::transfer_plan;

use crate::config::CddConfig;

/// Builds plans against a concrete cluster.
pub struct OpBuilder<'a> {
    /// The cluster whose resources the plans reference.
    pub cluster: &'a Cluster,
    /// Protocol cost parameters.
    pub cfg: &'a CddConfig,
}

impl<'a> OpBuilder<'a> {
    /// Block size of the single I/O space.
    fn bs(&self) -> u64 {
        self.cluster.cfg.block_size
    }

    /// A message of `bytes` from node `src` to node `dst`.
    pub fn msg(&self, src: usize, dst: usize, bytes: u64) -> Plan {
        transfer_plan(&self.cluster.cfg.net, &self.cluster.path(src, dst), bytes)
    }

    /// The client CDD's kernel dispatch cost for one request.
    pub fn driver(&self, client: usize) -> Plan {
        use_res(self.cluster.nodes[client].cpu, Demand::Busy(self.cfg.driver_overhead))
    }

    /// Write `nblocks` consecutive blocks starting at physical block
    /// `start` of `disk`, with the data shipped from `client`. `ack`
    /// requests a completion acknowledgement (foreground writes).
    pub fn write_run(
        &self,
        client: usize,
        disk: usize,
        start: u64,
        nblocks: u64,
        ack: bool,
    ) -> Plan {
        let owner = self.cluster.node_of_disk(disk);
        let payload = nblocks * self.bs();
        let d = &self.cluster.disks[disk];
        let mut chain = vec![
            self.msg(client, owner, self.cfg.control_bytes + payload),
            use_res(d.bus, Demand::BusXfer { bytes: payload }),
            use_res(d.res, Demand::DiskWrite { offset: start * self.bs(), bytes: payload }),
        ];
        if ack {
            chain.push(self.msg(owner, client, self.cfg.ack_bytes));
        }
        seq(chain)
    }

    /// Read `nblocks` consecutive blocks starting at physical block
    /// `start` of `disk`, delivering the data to `client`.
    pub fn read_run(&self, client: usize, disk: usize, start: u64, nblocks: u64) -> Plan {
        let owner = self.cluster.node_of_disk(disk);
        let payload = nblocks * self.bs();
        let d = &self.cluster.disks[disk];
        seq(vec![
            self.msg(client, owner, self.cfg.control_bytes),
            use_res(d.res, Demand::DiskRead { offset: start * self.bs(), bytes: payload }),
            use_res(d.bus, Demand::BusXfer { bytes: payload }),
            self.msg(owner, client, payload),
        ])
    }

    /// Parity/reconstruction XOR of `bytes` on `client`'s CPU.
    pub fn xor(&self, client: usize, bytes: u64) -> Plan {
        use_res(
            self.cluster.nodes[client].cpu,
            Demand::Busy(SimDuration::for_bytes(bytes, self.cfg.xor_rate)),
        )
    }

    /// One lock-group acquisition round: the client's consistency module
    /// broadcasts the grant to every peer CDD and collects acknowledgements
    /// (the table is replicated, so all copies update atomically).
    pub fn lock_round(&self, client: usize) -> Plan {
        let peers: Vec<Plan> = (0..self.cluster.cfg.nodes)
            .filter(|&n| n != client)
            .map(|n| {
                seq(vec![
                    self.msg(client, n, self.cfg.control_bytes),
                    self.msg(n, client, self.cfg.ack_bytes),
                ])
            })
            .collect();
        par(peers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterConfig;
    use sim_core::Engine;

    fn setup() -> (Engine, Cluster) {
        let mut e = Engine::new();
        let c = Cluster::build(ClusterConfig::trojans_4x3(), &mut e);
        (e, c)
    }

    #[test]
    fn local_write_skips_network() {
        let (mut e, c) = setup();
        let cfg = CddConfig::default();
        let b = OpBuilder { cluster: &c, cfg: &cfg };
        // Disk 0 is on node 0: a node-0 client writes locally.
        e.spawn_job("local", b.write_run(0, 0, 0, 1, true));
        e.run().unwrap();
        assert_eq!(e.resource_stats(c.nodes[0].tx).ops, 0, "local write used the NIC");
        assert_eq!(e.resource_stats(c.disks[0].res).ops, 1);
    }

    #[test]
    fn remote_write_crosses_both_nics() {
        let (mut e, c) = setup();
        let cfg = CddConfig::default();
        let b = OpBuilder { cluster: &c, cfg: &cfg };
        // Disk 1 is on node 1: a node-0 client writes remotely.
        e.spawn_job("remote", b.write_run(0, 1, 0, 1, true));
        e.run().unwrap();
        assert!(e.resource_stats(c.nodes[0].tx).ops > 0);
        assert!(e.resource_stats(c.nodes[1].rx).ops > 0);
        // The ack flows back.
        assert!(e.resource_stats(c.nodes[1].tx).ops > 0);
        assert_eq!(e.resource_stats(c.disks[1].res).ops, 1);
    }

    #[test]
    fn read_run_moves_payload_back() {
        let (mut e, c) = setup();
        let cfg = CddConfig::default();
        let b = OpBuilder { cluster: &c, cfg: &cfg };
        let payload = 4 * c.cfg.block_size;
        e.spawn_job("read", b.read_run(0, 1, 0, 4));
        e.run().unwrap();
        let back = e.resource_stats(c.nodes[1].tx).bytes;
        assert!(back >= payload, "only {back} bytes returned");
        assert_eq!(e.resource_stats(c.disks[1].res).bytes, payload);
    }

    #[test]
    fn longer_runs_amortize_positioning() {
        let (mut e, c) = setup();
        let cfg = CddConfig::default();
        let b = OpBuilder { cluster: &c, cfg: &cfg };
        // One 8-block run vs eight scattered 1-block reads on another disk.
        e.spawn_job("run", b.read_run(0, 1, 0, 8));
        e.spawn_job("scattered", seq((0..8).map(|i| b.read_run(0, 2, i * 50, 1)).collect()));
        e.run().unwrap();
        let run_busy = e.resource_stats(c.disks[1].res).busy;
        let scat_busy = e.resource_stats(c.disks[2].res).busy;
        assert!(
            scat_busy.as_nanos() > 2 * run_busy.as_nanos(),
            "scattered={scat_busy} run={run_busy}"
        );
    }

    #[test]
    fn lock_round_contacts_every_peer() {
        let (mut e, c) = setup();
        let cfg = CddConfig::default();
        let b = OpBuilder { cluster: &c, cfg: &cfg };
        e.spawn_job("locks", b.lock_round(0));
        e.run().unwrap();
        for n in 1..4 {
            assert!(e.resource_stats(c.nodes[n].rx).ops > 0, "peer {n} not contacted");
            assert!(e.resource_stats(c.nodes[n].tx).ops > 0, "peer {n} did not ack");
        }
    }

    #[test]
    fn xor_cost_scales_with_bytes() {
        let (mut e, c) = setup();
        let cfg = CddConfig::default();
        let b = OpBuilder { cluster: &c, cfg: &cfg };
        e.spawn_job("xor", b.xor(0, 400_000_000));
        let rep = e.run().unwrap();
        assert!((rep.end.as_secs_f64() - 1.0).abs() < 1e-6);
    }
}
