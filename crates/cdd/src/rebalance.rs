//! Incremental rebalancing: draining an epoch transition's pending set.
//!
//! [`crate::membership`] flips placement instantly; this module moves the
//! bytes afterwards, in bounded crash-idempotent steps that reuse the
//! resumable-rebuild skeleton — fetch (straight copy from the vacated
//! disk when its media survives, redundancy reconstruction when not),
//! byte-compare against the new home, write only on difference. Reads
//! keep resolving still-pending blocks against the old home throughout,
//! so the array serves every request mid-migration with zero failed ops.

use std::collections::BTreeMap;

use raidx_core::BlockAddr;
use sim_core::plan::{par, seq};
use sim_core::Plan;

use crate::error::IoError;
use crate::membership::{EPOCH_META_LB, EPOCH_META_SPAN};
use crate::system::IoSystem;

/// Outcome of one (possibly partial) incremental rebalance attempt.
#[derive(Debug)]
pub struct RebalanceOutcome {
    /// Timing plan of the attempt's actual I/O.
    pub plan: Plan,
    /// Blocks copied (or reconstructed) onto the new home this attempt.
    pub moved: usize,
    /// Pending blocks found already correct on the new home — a resumed
    /// rebalance re-verifies instead of rewriting, exactly like the
    /// resumable rebuild it reuses the skeleton of.
    pub skipped: usize,
    /// True when the migration's pending set has fully drained.
    pub finished: bool,
}

/// What one pending physical block of the vacated disk held, for the
/// reconstruct path when the old media is unreadable.
enum PendingRole {
    /// A data or image copy of this logical block (same bytes either way).
    Block(u64),
    /// The parity block of this stripe.
    Parity(u64),
}

impl IoSystem {
    /// Drain up to `step_limit` pending blocks of the in-flight migration
    /// (all of them when `None`), driven from node `client`.
    ///
    /// Reuses the resumable-rebuild skeleton: each block is fetched (a
    /// straight copy from the old disk when its media survives, a
    /// redundancy reconstruction when not), byte-compared against the new
    /// home and only written when it differs — so a rebalance interrupted
    /// at any point re-runs idempotently and `moved` never double-counts
    /// a block. Returns a no-op outcome when no migration is in flight.
    pub fn rebalance(
        &mut self,
        client: usize,
        step_limit: Option<usize>,
    ) -> Result<RebalanceOutcome, IoError> {
        let m = match self.placer.migration() {
            Some(m) => m.clone(),
            None => {
                return Ok(RebalanceOutcome {
                    plan: Plan::Noop,
                    moved: 0,
                    skipped: 0,
                    finished: true,
                })
            }
        };
        let lock =
            self.locks.acquire(client, EPOCH_META_LB, EPOCH_META_SPAN).map_err(IoError::Lock)?;
        let result = self.rebalance_locked(client, &m, step_limit);
        self.locks.release(lock);
        result
    }

    fn rebalance_locked(
        &mut self,
        client: usize,
        m: &crate::placer::Migration,
        step_limit: Option<usize>,
    ) -> Result<RebalanceOutcome, IoError> {
        let limit = step_limit.unwrap_or(usize::MAX).min(m.pending.len());
        let batch: Vec<u64> = m.pending.iter().take(limit).copied().collect();
        let old_ok =
            !m.old_dead && !self.plane.is_failed(m.old_phys) && !self.plane.is_offline(m.old_phys);

        // Reconstruct mode: reverse-map each pending physical block to
        // what it held, by walking the written region once.
        let mut roles: BTreeMap<u64, PendingRole> = BTreeMap::new();
        if !old_ok {
            for lb in 0..self.high_water {
                let d = self.layout.locate_data(lb);
                if d.disk == m.slot {
                    roles.entry(d.block).or_insert(PendingRole::Block(lb));
                }
                for img in self.layout.locate_images(lb) {
                    if img.disk == m.slot {
                        roles.entry(img.block).or_insert(PendingRole::Block(lb));
                    }
                }
                if let Some(p) = self.layout.locate_parity(lb) {
                    if p.disk == m.slot {
                        let (s, _) = self.layout.stripe_of(lb);
                        roles.entry(p.block).or_insert(PendingRole::Parity(s));
                    }
                }
            }
        }
        // Sources must route around media faults and the migrating slot
        // itself (slot space, resolved per copy through the placer).
        let mut avoid = self.placer.slot_read_faults(&self.storage_faults());
        avoid.insert(m.slot);

        let bs = self.block_size() as usize;
        let mut moved = 0usize;
        let mut skipped = 0usize;
        // (physical source reads, destination) of each block actually moved.
        let mut steps: Vec<(Vec<BlockAddr>, BlockAddr)> = Vec::new();
        for b in batch {
            let (bytes, inputs) = if old_ok {
                let bytes = self.plane.read_owned(m.old_phys, b)?;
                (bytes, vec![BlockAddr::new(m.old_phys, b)])
            } else {
                match roles.get(&b) {
                    Some(PendingRole::Block(lb)) => self.fetch_block(*lb, &avoid)?,
                    Some(PendingRole::Parity(s)) => {
                        let mut acc = vec![0u8; bs];
                        let mut inputs = Vec::new();
                        for member in self.layout.stripe_blocks(*s) {
                            let (bytes, ins) = self.fetch_block(member, &avoid)?;
                            cluster::xor_into(&mut acc, &bytes);
                            inputs.extend(ins);
                        }
                        (acc, inputs)
                    }
                    None => {
                        // Not a copy location of any written block (the
                        // layout walk is the authority): nothing to move.
                        self.placer.clear_pending(m.slot, b);
                        skipped += 1;
                        continue;
                    }
                }
            };
            let dst = BlockAddr::new(m.new_phys, b);
            let existing = self.plane.read_owned(dst.disk, dst.block)?;
            if existing == bytes {
                skipped += 1;
            } else {
                self.plane.write(dst.disk, dst.block, &bytes)?;
                moved += 1;
                steps.push((inputs, dst));
            }
            self.placer.clear_pending(m.slot, b);
        }
        let finished = self.placer.finish_if_drained();

        let ops = self.ops();
        let step_plans: Vec<Plan> = steps
            .iter()
            .map(|(inputs, dst)| {
                let write = ops.write_run(client, dst.disk, dst.block, 1, false);
                match inputs.as_slice() {
                    [src] => seq(vec![ops.read_run(client, src.disk, src.block, 1), write]),
                    _ => {
                        let reads: Vec<Plan> = inputs
                            .iter()
                            .map(|a| ops.read_run(client, a.disk, a.block, 1))
                            .collect();
                        let n = reads.len() as u64 + 1;
                        seq(vec![par(reads), ops.xor(client, n * bs as u64), write])
                    }
                }
            })
            .collect();
        // Pace the migration in batches, like the resumable rebuild: a
        // real rebalancer bounds outstanding I/O against foreground load.
        let batched: Vec<Plan> = step_plans.chunks(32).map(|c| par(c.to_vec())).collect();
        let plan = if batched.is_empty() { Plan::Noop } else { seq(batched) };
        Ok(RebalanceOutcome { plan, moved, skipped, finished })
    }
}

#[cfg(test)]
mod tests {
    use crate::testkit::shape;
    use raidx_core::Arch;

    /// Removing a healthy disk keeps every byte readable before, during
    /// and after the incremental rebalance; the vacated disk's content
    /// lands verbatim on the promoted spare.
    #[test]
    fn remove_healthy_disk_migrates_without_losing_a_byte() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 32u64;
        let data: Vec<u8> =
            (0..nblocks as usize * bs).map(|i| ((i * 11 + 5) % 251) as u8 + 1).collect();
        sys.write(0, 0, &data).expect("seed");
        let _ = sys.flush_images();

        let spare = sys.add_disk(&mut engine, 0).expect("add spare");
        assert_eq!(sys.epoch(), 1);
        let promoted = sys.remove_disk(0, 1).expect("remove disk 1");
        assert_eq!(promoted, spare);
        assert_eq!(sys.epoch(), 2);
        assert!(sys.migration_pending() > 0, "vacated disk had content to move");

        // Mid-migration: reads resolve pending blocks to the old home.
        let (got, _) = sys.read(2, 0, nblocks).expect("read during migration");
        assert_eq!(got, data, "bytes must survive the transition untouched");

        // Drain in small steps; every step is bounded and idempotent.
        let mut total_moved = 0;
        loop {
            let out = sys.rebalance(0, Some(5)).expect("rebalance step");
            total_moved += out.moved;
            engine.spawn_job("rebalance", out.plan);
            engine.run().expect("rebalance timing");
            if out.finished {
                break;
            }
        }
        assert_eq!(sys.migration_pending(), 0);
        assert!(total_moved > 0, "migration must actually move blocks");

        let (got, _) = sys.read(3, 0, nblocks).expect("post-migration read");
        assert_eq!(got, data);
        assert!(sys.scrub().expect("scrub") > 0, "redundancy must hold on the new home");
    }

    /// Removing a *failed* disk reconstructs its pending blocks from
    /// redundancy onto the spare — the migration path subsumes rebuild.
    #[test]
    fn remove_failed_disk_reconstructs_onto_the_spare() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 24u64;
        let data: Vec<u8> =
            (0..nblocks as usize * bs).map(|i| ((i * 13 + 7) % 249) as u8 + 1).collect();
        sys.write(0, 0, &data).expect("seed");
        let _ = sys.flush_images();

        sys.fail_disk(2);
        sys.add_disk(&mut engine, 0).expect("add spare");
        sys.remove_disk(0, 2).expect("retire the failed disk");
        assert!(!sys.faults().contains(2), "retired disk leaves the fault set");

        // Degraded but correct reads while the reconstruction drains.
        let (got, _) = sys.read(1, 0, nblocks).expect("read during reconstruction");
        assert_eq!(got, data);

        let out = sys.rebalance(0, None).expect("full reconstruction");
        assert!(out.finished);
        engine.spawn_job("reconstruct", out.plan);
        engine.run().expect("reconstruct timing");

        let (got, _) = sys.read(3, 0, nblocks).expect("post-reconstruction read");
        assert_eq!(got, data);
        assert!(sys.scrub().expect("scrub") > 0);
    }

    /// A rebalance interrupted mid-flight re-runs idempotently: resumed
    /// attempts skip already-moved blocks and never double-count.
    #[test]
    fn interrupted_rebalance_resumes_idempotently() {
        let (mut engine, mut sys) = shape(4, 1, 8 << 20, Arch::RaidX);
        let bs = sys.block_size() as usize;
        let nblocks = 32u64;
        let data: Vec<u8> = (0..nblocks as usize * bs).map(|i| (i % 254) as u8 + 1).collect();
        sys.write(0, 0, &data).expect("seed");
        let _ = sys.flush_images();

        sys.add_disk(&mut engine, 0).expect("add spare");
        sys.remove_disk(0, 1).expect("remove");
        let pending = sys.migration_pending();
        assert!(pending > 3);

        let a = sys.rebalance(0, Some(3)).expect("partial rebalance");
        assert!(!a.finished);
        assert_eq!(a.moved + a.skipped, 3);
        // Overwrite one still-pending block mid-migration: the write goes
        // to the new home and supersedes that block's migration.
        let lb = (0..nblocks)
            .find(|&lb| sys.layout().locate_data(lb).disk == 1)
            .expect("a primary on the migrating slot");
        let fresh = vec![0xA5u8; bs];
        sys.write(0, lb, &fresh).expect("write during migration");

        let b = sys.rebalance(0, None).expect("resumed rebalance");
        assert!(b.finished);
        assert_eq!(sys.migration_pending(), 0);
        assert!(
            a.moved + a.skipped + b.moved + b.skipped <= pending,
            "resume must not double-count blocks"
        );

        let (got, _) = sys.read(2, lb, 1).expect("superseded block read");
        assert_eq!(got, fresh, "in-migration write must win");
        assert!(sys.scrub().expect("scrub") > 0);
    }
}
