#![warn(missing_docs)]
//! # workloads — benchmark generators for the RAID-x evaluation
//!
//! The two measured workloads of the paper:
//!
//! * [`parallel_io`] — the synchronized parallel read/write benchmark
//!   behind Figure 5 and Table 3 (large = 2 MB/client, small = 32 KB,
//!   barrier-synchronized bursts, private uncached files);
//! * [`andrew`] — a synthetic Andrew benchmark (Figure 6): MakeDir, Copy,
//!   ScanDir, ReadAll and Make phases over the cluster file system.
//!
//! Both run unchanged over every architecture through
//! [`cdd::BlockStore`].

pub mod andrew;
pub mod latency;
pub mod mixed;
pub mod op_script;
pub mod parallel_io;
pub mod zipf;

pub use andrew::{run_andrew, AndrewConfig, AndrewResult, PHASES};
pub use latency::{measure_latency, percentile, LatencyResult};
pub use mixed::{run_mixed, MixedConfig, MixedResult};
pub use op_script::{check_against_model, gen_script, run_script, ScriptOp, ScriptOutcome};
pub use parallel_io::{run_parallel_io, BandwidthResult, IoPattern, ParallelIoConfig};
pub use zipf::{run_zipf, ZipfConfig, ZipfOutcome, ZipfSampler};
