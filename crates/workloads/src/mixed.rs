//! A transaction-style mixed workload: small reads and writes with a
//! hot-spot access pattern, the shape of the "secure E-commerce and data
//! mining" applications the paper's introduction motivates. Unlike the
//! Figure-5 microbenchmarks, requests interleave reads and writes per
//! client and target shared hot regions, exercising the lock-group table
//! and the small-write paths together.

use cdd::{BlockStore, IoError};
use sim_core::plan::seq;
use sim_core::rng::SplitMix64;
use sim_core::{Engine, Plan};

/// Parameters of the mixed workload.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// Concurrent clients.
    pub clients: usize,
    /// Synchronous operations per client.
    pub ops_per_client: usize,
    /// Fraction of operations that are writes (0..=1).
    pub write_fraction: f64,
    /// Fraction of accesses hitting the hot region (80/20-style skew).
    pub hot_fraction: f64,
    /// The hot region's share of the used address space.
    pub hot_region: f64,
    /// Blocks touched by the largest request (sizes draw from 1..=this).
    pub max_blocks: u64,
    /// Blocks of usable address space to spread load over.
    pub working_set_blocks: u64,
    /// Seed for the access pattern.
    pub seed: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            clients: 16,
            ops_per_client: 32,
            write_fraction: 0.3,
            hot_fraction: 0.8,
            hot_region: 0.1,
            max_blocks: 4,
            working_set_blocks: 4096,
            seed: 0x0DD5_EED5,
        }
    }
}

/// Outcome of a mixed run.
#[derive(Debug, Clone)]
pub struct MixedResult {
    /// Completed operations per simulated second.
    pub ops_per_sec: f64,
    /// Aggregate payload bandwidth, MB/s.
    pub aggregate_mbs: f64,
    /// Total operations executed.
    pub total_ops: usize,
    /// Elapsed simulated seconds.
    pub elapsed_secs: f64,
}

/// Run the workload. Writes target client-private slices of the hot/cold
/// regions (the paper's benchmarks avoid inter-client write sharing;
/// reads share everything).
pub fn run_mixed<S: BlockStore>(
    engine: &mut Engine,
    store: &mut S,
    cfg: &MixedConfig,
) -> Result<MixedResult, IoError> {
    let bs = store.block_size();
    let ws = cfg.working_set_blocks.min(store.capacity_blocks());
    let hot_blocks = ((ws as f64 * cfg.hot_region) as u64).max(cfg.max_blocks + 1);
    let mut rng = SplitMix64::new(cfg.seed);
    let nodes = store.nodes();

    // Pre-seed the working set (functional only, outside the window).
    let seedbuf = vec![0xB7u8; (ws * bs) as usize];
    store.write(0, 0, &seedbuf)?;

    let mut total_bytes = 0u64;
    let mut total_ops = 0usize;
    for c in 0..cfg.clients {
        let node = (c + 1) % nodes;
        let mut steps: Vec<Plan> = Vec::with_capacity(cfg.ops_per_client);
        for _ in 0..cfg.ops_per_client {
            let nblocks = 1 + rng.next_below(cfg.max_blocks);
            let hot = rng.next_f64() < cfg.hot_fraction;
            let is_write = rng.next_f64() < cfg.write_fraction;
            let lb0 = if is_write {
                // Private per-client write slice within the chosen region.
                let slice = (if hot { hot_blocks } else { ws - hot_blocks }) / cfg.clients as u64;
                let slice = slice.max(cfg.max_blocks + 1);
                let base = if hot { 0 } else { hot_blocks };
                let within = rng.next_below(slice - nblocks);
                (base + c as u64 * slice + within).min(ws - nblocks)
            } else if hot {
                rng.next_below(hot_blocks - nblocks)
            } else {
                hot_blocks + rng.next_below(ws - hot_blocks - nblocks)
            };
            let plan = if is_write {
                let data = vec![(c % 251) as u8; (nblocks * bs) as usize];
                store.write(node, lb0, &data)?
            } else {
                store.read(node, lb0, nblocks)?.1
            };
            total_bytes += nblocks * bs;
            total_ops += 1;
            steps.push(plan);
        }
        engine.spawn_job(format!("txn-client{c}"), seq(steps));
    }
    let start = engine.now();
    let report = engine.run().expect("mixed workload deadlocked");
    let elapsed = report.foreground_end.since(start).as_secs_f64();
    Ok(MixedResult {
        ops_per_sec: total_ops as f64 / elapsed,
        aggregate_mbs: total_bytes as f64 / elapsed / 1e6,
        total_ops,
        elapsed_secs: elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    fn run(arch: Arch) -> MixedResult {
        let (mut engine, mut store) = cdd::testkit::trojans(arch);
        let cfg = MixedConfig { clients: 8, ops_per_client: 16, ..Default::default() };
        run_mixed(&mut engine, &mut store, &cfg).unwrap()
    }

    #[test]
    fn completes_and_reports() {
        let r = run(Arch::RaidX);
        assert_eq!(r.total_ops, 8 * 16);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.aggregate_mbs > 0.0);
    }

    #[test]
    fn raidx_beats_raid5_on_mixed_traffic() {
        let rx = run(Arch::RaidX);
        let r5 = run(Arch::Raid5);
        assert!(
            rx.ops_per_sec > r5.ops_per_sec,
            "RAID-x {:.0} ops/s vs RAID-5 {:.0} ops/s",
            rx.ops_per_sec,
            r5.ops_per_sec
        );
    }

    #[test]
    fn deterministic() {
        let a = run(Arch::Raid10);
        let b = run(Arch::Raid10);
        assert_eq!(a.ops_per_sec.to_bits(), b.ops_per_sec.to_bits());
    }
}
