//! The Andrew benchmark (Figure 6): five phases of file-system activity
//! from the classic CMU suite, run by many concurrent clients over the
//! cluster file system.
//!
//! Each client works in a private subtree (as in the paper — elapsed time
//! is driven by how the *underlying storage architecture* handles the
//! traffic mix, not by lock contention):
//!
//! 1. **MakeDir** — create the directory tree.
//! 2. **Copy** — copy the source files in (creates + small writes).
//! 3. **ScanDir** — recursive directory scan with stats.
//! 4. **ReadAll** — read every file.
//! 5. **Make** — compile: read sources, burn CPU, write objects.

use cdd::BlockStore;
use cfs::{Fs, FsError};
use sim_core::plan::{barrier, seq, use_res};
use sim_core::rng::SplitMix64;
use sim_core::{BarrierId, Demand, Engine, Plan, SimDuration};

/// Phase names, in order.
pub const PHASES: [&str; 5] = ["MakeDir", "Copy", "ScanDir", "ReadAll", "Make"];

/// Parameters of the synthetic Andrew run.
#[derive(Debug, Clone)]
pub struct AndrewConfig {
    /// Concurrent clients; client `i` runs on node `i mod nodes` (the
    /// paper drives up to 32 clients on 16 nodes).
    pub clients: usize,
    /// Directories per client subtree.
    pub dirs: usize,
    /// Source files per directory.
    pub files_per_dir: usize,
    /// Mean source-file size in bytes (sizes are drawn deterministically
    /// around this mean; Andrew's sources are small files).
    pub mean_file_bytes: usize,
    /// CPU time to "compile" one source file.
    pub compile_cpu: SimDuration,
    /// Seed for the size distribution.
    pub seed: u64,
}

impl Default for AndrewConfig {
    fn default() -> Self {
        AndrewConfig {
            clients: 1,
            dirs: 4,
            files_per_dir: 5,
            mean_file_bytes: 16 << 10,
            compile_cpu: SimDuration::from_millis(40),
            seed: 0xA11D_4EA7,
        }
    }
}

/// Per-phase elapsed times in seconds.
#[derive(Debug, Clone)]
pub struct AndrewResult {
    /// Elapsed wall-clock (simulated) per phase.
    pub phase_secs: [f64; 5],
}

impl AndrewResult {
    /// Total elapsed over all five phases.
    pub fn total_secs(&self) -> f64 {
        self.phase_secs.iter().sum()
    }
}

fn file_size(rng: &mut SplitMix64, mean: usize) -> usize {
    // Deterministic sizes in [mean/4, 2*mean): small-file-heavy like Andrew.
    let lo = (mean / 4).max(64);
    let hi = 2 * mean;
    lo + rng.next_below((hi - lo) as u64) as usize
}

/// Run the benchmark over a mounted file system. The engine must be the
/// one the store was built in.
pub fn run_andrew<S: BlockStore>(
    engine: &mut Engine,
    fs: &mut Fs<S>,
    cfg: &AndrewConfig,
) -> Result<AndrewResult, FsError> {
    let nodes = fs.store().nodes();
    let mut phase_secs = [0.0f64; 5];
    let mut rng = SplitMix64::new(cfg.seed);

    // Pre-generate the per-client file manifests so Copy/Read/Make agree.
    let manifests: Vec<Vec<(String, usize)>> = (0..cfg.clients)
        .map(|c| {
            let mut files = Vec::new();
            for d in 0..cfg.dirs {
                for f in 0..cfg.files_per_dir {
                    files.push((
                        format!("/c{c}/d{d}/src{f}.c"),
                        file_size(&mut rng, cfg.mean_file_bytes),
                    ));
                }
            }
            files
        })
        .collect();

    for (phase_idx, phase) in PHASES.iter().enumerate() {
        let start = engine.now();
        let bid = BarrierId(0xAD00 + phase_idx as u32);
        engine.register_barrier(bid, cfg.clients);
        for (c, manifest) in manifests.iter().enumerate() {
            // Start at node 1 so a lone client is remote from an NFS
            // server at node 0 (matching the real cluster setup).
            let node = (c + 1) % nodes;
            let mut ops: Vec<Plan> = vec![barrier(bid)];
            match phase_idx {
                0 => {
                    ops.push(fs.mkdir(node, &format!("/c{c}"))?);
                    for d in 0..cfg.dirs {
                        ops.push(fs.mkdir(node, &format!("/c{c}/d{d}"))?);
                    }
                }
                1 => {
                    for (path, size) in manifest {
                        let data: Vec<u8> =
                            (0..*size).map(|i| ((i * 37 + c * 11) % 256) as u8).collect();
                        ops.push(fs.write_file(node, path, &data)?);
                    }
                }
                2 => {
                    let (_, p) = fs.readdir(node, &format!("/c{c}"))?;
                    ops.push(p);
                    for d in 0..cfg.dirs {
                        let (entries, p) = fs.readdir(node, &format!("/c{c}/d{d}"))?;
                        ops.push(p);
                        for e in entries {
                            let (_, sp) = fs.stat(node, &format!("/c{c}/d{d}/{}", e.name))?;
                            ops.push(sp);
                        }
                    }
                }
                3 => {
                    for (path, size) in manifest {
                        let (data, p) = fs.read_file(node, path)?;
                        assert_eq!(data.len(), *size, "Andrew read lost bytes");
                        ops.push(p);
                    }
                }
                4 => {
                    for (path, _) in manifest {
                        let (_, p) = fs.read_file(node, path)?;
                        ops.push(p);
                        ops.push(use_res(fs.store().cpu_of(node), Demand::Busy(cfg.compile_cpu)));
                    }
                    // Link step: one output object per directory.
                    for d in 0..cfg.dirs {
                        let obj = vec![0xEEu8; cfg.mean_file_bytes];
                        ops.push(fs.write_file(node, &format!("/c{c}/d{d}/prog.o"), &obj)?);
                    }
                }
                _ => unreachable!(),
            }
            engine.spawn_job(format!("andrew/c{c}/{phase}"), seq(ops));
        }
        let report = engine.run().expect("andrew deadlocked");
        phase_secs[phase_idx] = report.foreground_end.since(start).as_secs_f64();
    }
    Ok(AndrewResult { phase_secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterConfig;
    use raidx_core::Arch;

    fn run(arch: Arch, clients: usize) -> AndrewResult {
        let mut cc = ClusterConfig::trojans();
        cc.nodes = 8;
        let (mut engine, store) = cdd::testkit::build(cc, arch);
        let (mut fs, _) = Fs::format(store, 2048, 0).unwrap();
        let cfg = AndrewConfig { clients, dirs: 2, files_per_dir: 3, ..Default::default() };
        run_andrew(&mut engine, &mut fs, &cfg).unwrap()
    }

    #[test]
    fn all_phases_take_time() {
        let r = run(Arch::RaidX, 2);
        for (i, s) in r.phase_secs.iter().enumerate() {
            assert!(*s > 0.0, "phase {} took no time", PHASES[i]);
        }
        assert!(r.total_secs() > 0.0);
    }

    #[test]
    fn make_phase_dominated_by_cpu() {
        let r = run(Arch::RaidX, 1);
        // 6 files x 40 ms compile = 240 ms of pure CPU: Make must be the
        // longest phase for one client.
        let make = r.phase_secs[4];
        assert!(make >= 0.24, "make={make}");
    }

    #[test]
    fn elapsed_grows_with_clients() {
        let small = run(Arch::RaidX, 1);
        let large = run(Arch::RaidX, 8);
        assert!(large.total_secs() > small.total_secs());
    }

    #[test]
    fn deterministic() {
        let a = run(Arch::Raid5, 3);
        let b = run(Arch::Raid5, 3);
        assert_eq!(a.phase_secs, b.phase_secs);
    }
}
