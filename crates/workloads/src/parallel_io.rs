//! The parallel disk-I/O benchmark of Figure 5 and Table 3.
//!
//! `C` clients (one per node) each access a **private file** striped across
//! the whole array: 2 MB for the "large" cases, one 32 KB block for the
//! "small" cases. All clients start together after a barrier (the paper
//! uses `MPI_Barrier()`), run `repeats` synchronized bursts, and the
//! aggregate bandwidth is total payload over the time the last client
//! finishes its foreground I/O — exactly how the paper counts RAID-x's
//! deferred image writes (they drain in the background and are excluded
//! from the foreground figure but still contend across bursts).

use cdd::{BlockStore, IoError};
use sim_core::plan::{barrier, seq};
use sim_core::{BarrierId, Engine, Plan};

/// The four access patterns of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPattern {
    /// Figure 5(a): 2 MB sequential read per client.
    LargeRead,
    /// Figure 5(b): 32 KB read per client.
    SmallRead,
    /// Figure 5(c): 2 MB sequential write per client.
    LargeWrite,
    /// Figure 5(d): 32 KB write per client.
    SmallWrite,
}

impl IoPattern {
    /// All four patterns in the figure's order.
    pub const ALL: [IoPattern; 4] =
        [IoPattern::LargeRead, IoPattern::SmallRead, IoPattern::LargeWrite, IoPattern::SmallWrite];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            IoPattern::LargeRead => "large read",
            IoPattern::SmallRead => "small read",
            IoPattern::LargeWrite => "large write",
            IoPattern::SmallWrite => "small write",
        }
    }

    /// True for the write patterns.
    pub fn is_write(self) -> bool {
        matches!(self, IoPattern::LargeWrite | IoPattern::SmallWrite)
    }
}

/// Parameters of one benchmark run.
#[derive(Debug, Clone)]
pub struct ParallelIoConfig {
    /// Concurrent clients (≤ nodes).
    pub clients: usize,
    /// Access pattern.
    pub pattern: IoPattern,
    /// Bytes per client per burst for the large patterns.
    pub large_bytes: u64,
    /// Bytes per client per burst for the small patterns.
    pub small_bytes: u64,
    /// Synchronized bursts (>1 exposes sustained behaviour, including
    /// RAID-x's background flush contention).
    pub repeats: usize,
    /// Pre-create the read files inside this run (disable when the caller
    /// seeded them already, e.g. before injecting a disk failure).
    pub precreate: bool,
}

impl Default for ParallelIoConfig {
    fn default() -> Self {
        ParallelIoConfig {
            clients: 1,
            pattern: IoPattern::LargeRead,
            large_bytes: 2 << 20,
            small_bytes: 32 << 10,
            repeats: 3,
            precreate: true,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct BandwidthResult {
    /// Aggregate foreground bandwidth in MB/s (decimal megabytes, as the
    /// paper reports).
    pub aggregate_mbs: f64,
    /// Time the last client finished its foreground I/O (seconds).
    pub elapsed_secs: f64,
    /// Time everything (including deferred image flushes) drained.
    pub drain_secs: f64,
    /// Total payload bytes moved in the foreground.
    pub total_bytes: u64,
    /// Mean per-request foreground latency (seconds).
    pub mean_latency_secs: f64,
}

/// Run the benchmark for `cfg` over `store` inside `engine`.
///
/// For the read patterns the private files are pre-created outside the
/// measured window (the paper reads existing, uncached files).
pub fn run_parallel_io<S: BlockStore>(
    engine: &mut Engine,
    store: &mut S,
    cfg: &ParallelIoConfig,
) -> Result<BandwidthResult, IoError> {
    let bs = store.block_size();
    let bytes = match cfg.pattern {
        IoPattern::LargeRead | IoPattern::LargeWrite => cfg.large_bytes,
        IoPattern::SmallRead | IoPattern::SmallWrite => cfg.small_bytes,
    };
    let nblocks = bytes.div_ceil(bs).max(1);
    let clients = cfg.clients.min(store.nodes());
    assert!(clients > 0, "need at least one client");
    // Region layout: each client owns `repeats` disjoint file regions so
    // bursts do not overwrite each other (and reads see distinct data).
    let region_blocks = nblocks * cfg.repeats as u64;
    assert!(
        region_blocks * clients as u64 <= store.capacity_blocks(),
        "workload exceeds array capacity"
    );

    // Clients map to nodes starting at node 1, so a lone client is remote
    // from the NFS server (node 0), as on the real cluster; with a full
    // complement of clients one of them shares the server node.
    let nodes = store.nodes();
    let node_of = |c: usize| (c + 1) % nodes;
    // Pre-create files for reads (functionally only — outside the window).
    if !cfg.pattern.is_write() && cfg.precreate {
        let payload: Vec<u8> = vec![0xA5; (nblocks * bs) as usize];
        for c in 0..clients {
            for r in 0..cfg.repeats as u64 {
                let lb0 = c as u64 * region_blocks + r * nblocks;
                let _ = store.write(node_of(c), lb0, &payload)?; // plan discarded
            }
        }
    }

    let bid = BarrierId(0xF5);
    engine.register_barrier(bid, clients);
    let write_payload: Vec<u8> = vec![0x3C; (nblocks * bs) as usize];
    for c in 0..clients {
        let mut steps: Vec<Plan> = Vec::with_capacity(cfg.repeats * 2);
        for r in 0..cfg.repeats as u64 {
            let lb0 = c as u64 * region_blocks + r * nblocks;
            steps.push(barrier(bid));
            let p = if cfg.pattern.is_write() {
                store.write(node_of(c), lb0, &write_payload)?
            } else {
                store.read(node_of(c), lb0, nblocks)?.1
            };
            steps.push(p);
        }
        engine.spawn_job(format!("client{c}/{}", cfg.pattern.label()), seq(steps));
    }
    let report = engine.run().expect("benchmark deadlocked");
    let latencies: f64 = engine
        .jobs()
        .iter()
        .rev()
        .take(clients)
        .filter_map(|j| j.try_latency())
        .map(|d| d.as_secs_f64())
        .sum();
    // Drain any write-behind image groups still buffered (outside the
    // foreground window, like the CDD's idle-time flusher).
    let flush = store.flush();
    let report = if matches!(flush, Plan::Noop) {
        report
    } else {
        engine.spawn_job("image-flush", flush);
        let drained = engine.run().expect("flush deadlocked");
        sim_core::RunReport { end: drained.end, foreground_end: report.foreground_end }
    };

    let total_bytes = clients as u64 * nblocks * bs * cfg.repeats as u64;
    let elapsed = report.foreground_end.as_secs_f64();
    Ok(BandwidthResult {
        aggregate_mbs: total_bytes as f64 / elapsed / 1e6,
        elapsed_secs: elapsed,
        drain_secs: report.end.as_secs_f64(),
        total_bytes,
        mean_latency_secs: latencies / (clients as f64 * cfg.repeats as f64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    fn run(arch: Arch, pattern: IoPattern, clients: usize) -> BandwidthResult {
        let (mut engine, mut store) = cdd::testkit::trojans(arch);
        let cfg = ParallelIoConfig { clients, pattern, repeats: 2, ..Default::default() };
        run_parallel_io(&mut engine, &mut store, &cfg).unwrap()
    }

    #[test]
    fn bandwidth_grows_with_clients() {
        let one = run(Arch::RaidX, IoPattern::LargeRead, 1);
        let many = run(Arch::RaidX, IoPattern::LargeRead, 16);
        assert!(
            many.aggregate_mbs > 2.0 * one.aggregate_mbs,
            "1 client {:.1} MB/s, 16 clients {:.1} MB/s",
            one.aggregate_mbs,
            many.aggregate_mbs
        );
    }

    #[test]
    fn raidx_writes_beat_raid5_small_writes() {
        let rx = run(Arch::RaidX, IoPattern::SmallWrite, 8);
        let r5 = run(Arch::Raid5, IoPattern::SmallWrite, 8);
        assert!(
            rx.aggregate_mbs > 1.5 * r5.aggregate_mbs,
            "RAID-x {:.2} MB/s vs RAID-5 {:.2} MB/s",
            rx.aggregate_mbs,
            r5.aggregate_mbs
        );
    }

    #[test]
    fn raidx_background_drain_extends_past_foreground() {
        let r = run(Arch::RaidX, IoPattern::LargeWrite, 4);
        assert!(r.drain_secs > r.elapsed_secs, "no deferred flush observed");
        // RAID-10 has nothing deferred.
        let r10 = run(Arch::Raid10, IoPattern::LargeWrite, 4);
        assert!(r10.drain_secs - r10.elapsed_secs < 1e-9);
    }

    #[test]
    fn result_accounting_consistent() {
        let r = run(Arch::Raid10, IoPattern::SmallRead, 4);
        assert_eq!(r.total_bytes, 4 * 2 * (32 << 10));
        assert!(r.mean_latency_secs > 0.0);
        assert!(r.aggregate_mbs > 0.0);
    }
}
