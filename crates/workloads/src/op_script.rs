//! Scripted op sequences with named trace points — the workload half of
//! fault injection.
//!
//! A script is a flat, pre-generated list of [`ScriptOp`]s (so the
//! sequence is independent of what faults do to it); [`run_script`]
//! executes it one op per engine cycle, announcing the trace point
//! `"op:<index>"` to an optional [`cdd::FaultInjector`] before each op —
//! the hook the `fault-sweep` verify pass and the recovery property
//! tests use to fire a fault at a precise position in the workload.
//!
//! Alongside the array, the runner maintains a **shadow model**: the
//! bytes of every write that *succeeded* (failed ops drop out of the
//! model exactly as they dropped out of the array). After recovery, a
//! full read of the written region must be byte-identical to the model —
//! the zero-lost-blocks criterion.

use std::collections::BTreeMap;

use cdd::{FaultInjector, IoError, IoSystem};
use sim_core::check::Gen;
use sim_core::Engine;

/// One scripted logical operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Write `blocks` blocks at `lb`, filled from `tag`.
    Write {
        /// Issuing node.
        client: usize,
        /// First logical block.
        lb: u64,
        /// Run length in blocks.
        blocks: u64,
        /// Fill seed: block `lb+i` is filled with `tag ⊕ (lb+i)` bytes.
        tag: u8,
    },
    /// Read `blocks` blocks at `lb`.
    Read {
        /// Issuing node.
        client: usize,
        /// First logical block.
        lb: u64,
        /// Run length in blocks.
        blocks: u64,
    },
}

/// The fill byte for logical block `lb` written under `tag`.
fn fill_byte(tag: u8, lb: u64) -> u8 {
    tag ^ (lb as u8)
}

/// Draw a script of `nops` ops over `region_blocks` logical blocks from
/// `clients` issuing nodes (writes twice as likely as reads, runs of
/// 1–4 blocks). Same generator state ⇒ same script.
pub fn gen_script(g: &mut Gen, clients: usize, region_blocks: u64, nops: usize) -> Vec<ScriptOp> {
    assert!(clients > 0 && region_blocks >= 4, "degenerate script shape");
    (0..nops)
        .map(|_| {
            let client = g.usize_in(0..clients);
            let lb = g.u64_in(0..region_blocks - 3);
            let blocks = g.u64_in(1..5).min(region_blocks - lb);
            if g.weighted(&[2, 1]) == 0 {
                ScriptOp::Write { client, lb, blocks, tag: g.u8() | 1 }
            } else {
                ScriptOp::Read { client, lb, blocks }
            }
        })
        .collect()
}

/// What a script run observed.
#[derive(Debug)]
pub struct ScriptOutcome {
    /// Shadow model: fill byte of each logical block a *successful*
    /// write covered.
    pub model: BTreeMap<u64, u8>,
    /// Ops that completed.
    pub completed: usize,
    /// Ops that surfaced an [`IoError`] (dropped from the model).
    pub failed: usize,
    /// Successful reads whose bytes differed from the model — possible
    /// only inside a partition window (a cut-off node serving its own
    /// stale local copy before resync), never after recovery.
    pub stale_reads: usize,
}

/// Execute `ops` one engine cycle at a time. Before each op the trace
/// point `"op:<index>"` is announced to `injector` (if any) and due
/// timed faults fire; after the whole script, remaining timed faults are
/// drained with the engine driven past their deadlines. Ops that fail
/// (`DataLoss`/`Unreachable`/…) are *counted*, not propagated: a faulted
/// run keeps going, exactly like a retrying client application.
pub fn run_script(
    engine: &mut Engine,
    sys: &mut IoSystem,
    ops: &[ScriptOp],
    mut injector: Option<&mut FaultInjector>,
) -> Result<ScriptOutcome, IoError> {
    let bs = sys.block_size() as usize;
    let mut out = ScriptOutcome { model: BTreeMap::new(), completed: 0, failed: 0, stale_reads: 0 };
    for (i, op) in ops.iter().enumerate() {
        if let Some(inj) = injector.as_deref_mut() {
            inj.hit_point(&format!("op:{i}"), engine, sys)?;
            inj.poll(engine, sys)?;
        }
        match *op {
            ScriptOp::Write { client, lb, blocks, tag } => {
                let mut data = vec![0u8; blocks as usize * bs];
                for b in 0..blocks {
                    let off = b as usize * bs;
                    data[off..off + bs].fill(fill_byte(tag, lb + b));
                }
                match sys.write(client, lb, &data) {
                    Ok(plan) => {
                        engine.spawn_job(format!("op{i}/write"), plan);
                        for b in 0..blocks {
                            out.model.insert(lb + b, fill_byte(tag, lb + b));
                        }
                        out.completed += 1;
                    }
                    Err(_) => out.failed += 1,
                }
            }
            ScriptOp::Read { client, lb, blocks } => match sys.read(client, lb, blocks) {
                Ok((data, plan)) => {
                    engine.spawn_job(format!("op{i}/read"), plan);
                    for b in 0..blocks {
                        let want = out.model.get(&(lb + b)).copied().unwrap_or(0);
                        let off = b as usize * bs;
                        if data[off..off + bs].iter().any(|&x| x != want) {
                            out.stale_reads += 1;
                            break;
                        }
                    }
                    out.completed += 1;
                }
                Err(_) => out.failed += 1,
            },
        }
        engine.run().expect("script op deadlocked");
    }
    if let Some(inj) = injector {
        inj.drain_timed(engine, sys)?;
        engine.run().expect("fault drain deadlocked");
    }
    Ok(out)
}

/// Read the whole written region back (as `client`) and compare it
/// byte-for-byte against the shadow model. Returns the first divergent
/// logical block, or `Err(IoError)` if the read itself fails.
pub fn check_against_model(
    sys: &mut IoSystem,
    client: usize,
    model: &BTreeMap<u64, u8>,
) -> Result<Result<(), u64>, IoError> {
    let Some(&last) = model.keys().next_back() else {
        return Ok(Ok(()));
    };
    let bs = sys.block_size() as usize;
    let (data, _plan) = sys.read(client, 0, last + 1)?;
    for lb in 0..=last {
        let want = model.get(&lb).copied().unwrap_or(0);
        let off = lb as usize * bs;
        if data[off..off + bs].iter().any(|&x| x != want) {
            return Ok(Err(lb));
        }
    }
    Ok(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    #[test]
    fn same_gen_state_same_script() {
        let a = gen_script(&mut Gen::new(7), 4, 64, 40);
        let b = gen_script(&mut Gen::new(7), 4, 64, 40);
        assert_eq!(a, b);
        assert!(a.iter().any(|o| matches!(o, ScriptOp::Write { .. })));
    }

    #[test]
    fn fault_free_script_matches_model() {
        let (mut engine, mut sys) = cdd::testkit::shape(4, 2, 4 << 20, Arch::RaidX);
        let ops = gen_script(&mut Gen::new(11), 4, 64, 50);
        let out = run_script(&mut engine, &mut sys, &ops, None).expect("clean run");
        assert_eq!(out.failed, 0);
        assert_eq!(out.stale_reads, 0);
        assert_eq!(
            check_against_model(&mut sys, 0, &out.model).expect("readback"),
            Ok(()),
            "fault-free run must match its model exactly"
        );
    }
}
