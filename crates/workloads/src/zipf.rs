//! Zipfian-skew read workload — the cache's measured regime.
//!
//! Client caching pays off exactly when the read popularity distribution
//! is skewed: a Zipf(s) stream concentrates most accesses on a few hot
//! blocks, so a small per-client cache absorbs them after one cold miss
//! each. [`run_zipf`] seeds a region, then drives a deterministic
//! Zipf-distributed single-block read stream (with optional interleaved
//! writes that exercise the write-grant invalidation path), verifying
//! every read byte-for-byte against a shadow model and timing the read
//! phase in simulated time. The same seed produces the same access
//! sequence whether or not the cache is enabled — which is what lets the
//! `cache-coherence` verify pass compare cached and uncached runs
//! byte-for-byte and report the measured speedup.

use cdd::{IoError, IoSystem};
use sim_core::check::Gen;
use sim_core::{Engine, SimDuration};

/// Shape of a Zipf read workload.
#[derive(Debug, Clone)]
pub struct ZipfConfig {
    /// Issuing nodes (reads and interleaved writes round-robin by draw).
    pub clients: usize,
    /// Size of the accessed region in logical blocks.
    pub region_blocks: u64,
    /// Reads in the measured phase.
    pub reads: usize,
    /// Interleave one write per this many reads (`0` = read-only phase).
    /// Writes sample the same Zipf distribution, so they hit hot —
    /// cached — blocks and exercise invalidation where it matters.
    pub write_every: usize,
    /// Zipf exponent ×100 (`100` = the classic s = 1.0). An integer so
    /// the config stays `Eq`-comparable and trivially deterministic.
    pub skew_x100: u32,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig { clients: 4, region_blocks: 256, reads: 4000, write_every: 16, skew_x100: 100 }
    }
}

/// What a Zipf run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipfOutcome {
    /// Reads completed in the measured phase.
    pub reads: usize,
    /// Interleaved writes completed.
    pub writes: usize,
    /// Reads whose bytes diverged from the shadow model. Any nonzero
    /// value is a coherence bug — the workload never runs faulted.
    pub stale_reads: usize,
    /// Simulated time the measured read phase took (seed phase excluded).
    pub read_time: SimDuration,
}

/// Deterministic Zipf(s) rank sampler over `0..n` via inverse-CDF binary
/// search on the cumulative weights `1/(k+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Build the sampler for `n` ranks with exponent `skew_x100 / 100`.
    pub fn new(n: u64, skew_x100: u32) -> Self {
        assert!(n > 0, "empty rank space");
        let s = f64::from(skew_x100) / 100.0;
        let mut cum = Vec::with_capacity(n as usize);
        let mut acc = 0.0_f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cum.push(acc);
        }
        ZipfSampler { cum }
    }

    /// Draw a rank in `0..n`; rank 0 is the hottest.
    pub fn sample(&self, g: &mut Gen) -> u64 {
        let total = *self.cum.last().expect("sampler is non-empty");
        // 53 uniform mantissa bits; the draw is strictly below `total`,
        // so `partition_point` always lands inside `0..n`.
        let u = g.u64_in(0..(1 << 53)) as f64 / (1u64 << 53) as f64 * total;
        self.cum.partition_point(|&c| c <= u) as u64
    }
}

/// Fisher–Yates rank→block permutation, so the hot ranks scatter across
/// the physical layout instead of clustering on the first disks.
fn rank_permutation(g: &mut Gen, n: u64) -> Vec<u64> {
    let mut p: Vec<u64> = (0..n).collect();
    for i in (1..p.len()).rev() {
        let j = g.usize_in(0..i + 1);
        p.swap(i, j);
    }
    p
}

/// The fill byte of logical block `lb` written under `tag`.
fn fill_byte(tag: u8, lb: u64) -> u8 {
    tag ^ (lb as u8)
}

/// Seed the region, then run the measured Zipf read phase. Every read is
/// verified against the shadow model as it completes; `read_time` is the
/// simulated duration of the measured phase only.
pub fn run_zipf(
    engine: &mut Engine,
    sys: &mut IoSystem,
    cfg: &ZipfConfig,
    seed: u64,
) -> Result<ZipfOutcome, IoError> {
    assert!(cfg.clients > 0 && cfg.region_blocks > 0, "degenerate workload shape");
    let bs = sys.block_size() as usize;
    let mut g = Gen::new(seed);
    let sampler = ZipfSampler::new(cfg.region_blocks, cfg.skew_x100);
    let perm = rank_permutation(&mut g, cfg.region_blocks);

    // Seed phase: every block written once so reads have known bytes.
    let mut model: Vec<u8> = (0..cfg.region_blocks).map(|lb| fill_byte(1, lb)).collect();
    for lb in 0..cfg.region_blocks {
        let plan = sys.write(0, lb, &vec![model[lb as usize]; bs])?;
        engine.spawn_job(format!("zipf-seed/{lb}"), plan);
    }
    engine.run().expect("zipf seed phase deadlocked");

    let t0 = engine.now();
    let mut out = ZipfOutcome { reads: 0, writes: 0, stale_reads: 0, read_time: SimDuration(0) };
    let mut tag: u8 = 1;
    for i in 0..cfg.reads {
        if cfg.write_every > 0 && i % cfg.write_every == cfg.write_every - 1 {
            let lb = perm[sampler.sample(&mut g) as usize];
            let client = g.usize_in(0..cfg.clients);
            tag = tag.wrapping_add(2); // stays odd: never collides with the 0-fill of unwritten blocks
            let plan = sys.write(client, lb, &vec![fill_byte(tag, lb); bs])?;
            model[lb as usize] = fill_byte(tag, lb);
            engine.spawn_job(format!("zipf-w/{i}"), plan);
            out.writes += 1;
        }
        let client = g.usize_in(0..cfg.clients);
        let lb = perm[sampler.sample(&mut g) as usize];
        let (data, plan) = sys.read(client, lb, 1)?;
        engine.spawn_job(format!("zipf-r/{i}"), plan);
        if data.iter().any(|&x| x != model[lb as usize]) {
            out.stale_reads += 1;
        }
        out.reads += 1;
        engine.run().expect("zipf op deadlocked");
    }
    out.read_time = engine.now().since(t0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdd::{CacheConfig, CddConfig};
    use raidx_core::Arch;

    #[test]
    fn sampler_is_deterministic_and_skewed() {
        let s = ZipfSampler::new(256, 100);
        let draw = |seed| {
            let mut g = Gen::new(seed);
            (0..2000).map(|_| s.sample(&mut g)).collect::<Vec<u64>>()
        };
        assert_eq!(draw(3), draw(3), "same seed must give the same rank stream");
        let ranks = draw(3);
        assert!(ranks.iter().all(|&r| r < 256));
        let hot = ranks.iter().filter(|&&r| r < 26).count();
        // Zipf(1.0) over 256 ranks puts ~54% of the mass on the top 10%.
        assert!(hot * 2 > ranks.len(), "top-10% ranks drew only {hot}/{}", ranks.len());
    }

    #[test]
    fn cached_and_uncached_runs_agree_and_the_cache_pays() {
        let cfg = ZipfConfig { region_blocks: 64, reads: 400, ..ZipfConfig::default() };
        let run = |cache: Option<CacheConfig>| {
            let cdd_cfg = CddConfig { cache, ..CddConfig::default() };
            let (mut engine, mut sys) =
                cdd::testkit::shape_with(4, 1, 8 << 20, Arch::RaidX, cdd_cfg);
            let out = run_zipf(&mut engine, &mut sys, &cfg, 9).expect("zipf run");
            (out, sys.cache_stats())
        };
        let (plain, no_stats) = run(None);
        let (cached, stats) = run(Some(CacheConfig { capacity_blocks: 32 }));
        assert!(no_stats.is_none(), "uncached system must report no cache stats");
        assert_eq!(plain.stale_reads, 0);
        assert_eq!(cached.stale_reads, 0, "cache must never serve stale bytes");
        assert_eq!(plain.reads, cached.reads);
        assert_eq!(plain.writes, cached.writes);
        let stats = stats.expect("cached system exports stats");
        assert!(stats.hits > 0, "a skewed read stream must hit the cache");
        assert!(stats.invalidations > 0, "interleaved writes must invalidate");
        assert!(
            cached.read_time < plain.read_time,
            "cache hits must shorten the measured phase: {:?} vs {:?}",
            cached.read_time,
            plain.read_time
        );
    }
}
