//! Closed-loop per-operation latency measurement.
//!
//! The Figure-5 harness reports aggregate bandwidth; this one measures
//! what a single request *feels* like under load: every client issues one
//! operation per round, the engine runs the round to completion, and each
//! job's foreground latency becomes one sample. Percentiles over many
//! rounds expose the tail the paper's averages hide (RAID-5's
//! read-modify-write shows up as a fat write tail).

use cdd::{BlockStore, IoError};
use sim_core::Engine;

/// Latency distribution summary (seconds).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst sample.
    pub max: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Percentile of an unsorted sample set (nearest-rank).
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Measure per-operation latency of single-block operations.
///
/// `clients` concurrent requesters, `rounds` closed-loop rounds; each
/// client touches its own block region (reads target pre-seeded blocks).
pub fn measure_latency<S: BlockStore>(
    engine: &mut Engine,
    store: &mut S,
    clients: usize,
    rounds: usize,
    writes: bool,
) -> Result<LatencyResult, IoError> {
    let bs = store.block_size();
    let nodes = store.nodes();
    // Prime stride so per-round targets spread over all disks instead of
    // synchronizing on one spindle (64 ≡ 0 mod 16 disks would hotspot).
    let region = 61u64;
    // Seed for reads.
    if !writes {
        let buf = vec![0x42u8; bs as usize];
        for c in 0..clients {
            for r in 0..rounds as u64 {
                store.write((c + 1) % nodes, c as u64 * region + r, &buf)?;
            }
        }
    }
    let payload = vec![0x24u8; bs as usize];
    let mut samples = Vec::with_capacity(clients * rounds);
    for r in 0..rounds as u64 {
        let before = engine.jobs().len();
        for c in 0..clients {
            let node = (c + 1) % nodes;
            let lb = c as u64 * region + r;
            let plan =
                if writes { store.write(node, lb, &payload)? } else { store.read(node, lb, 1)?.1 };
            engine.spawn_job(format!("lat/c{c}/r{r}"), plan);
        }
        engine.run().expect("latency round deadlocked");
        for job in &engine.jobs()[before..] {
            let lat = job.try_latency().expect("latency round job unfinished after run");
            samples.push(lat.as_secs_f64());
        }
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let n = samples.len();
    Ok(LatencyResult {
        mean,
        p50: percentile(&mut samples, 50.0),
        p95: percentile(&mut samples, 95.0),
        p99: percentile(&mut samples, 99.0),
        max: samples.last().copied().unwrap_or(0.0),
        samples: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raidx_core::Arch;

    fn run(arch: Arch, writes: bool) -> LatencyResult {
        let (mut engine, mut store) = cdd::testkit::trojans(arch);
        measure_latency(&mut engine, &mut store, 8, 6, writes).unwrap()
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut v, 50.0), 2.0);
        assert_eq!(percentile(&mut v, 100.0), 4.0);
        assert_eq!(percentile(&mut v, 1.0), 1.0);
        let mut one = vec![7.0];
        assert_eq!(percentile(&mut one, 99.0), 7.0);
    }

    #[test]
    fn distribution_is_ordered() {
        let r = run(Arch::RaidX, true);
        assert_eq!(r.samples, 48);
        assert!(r.p50 <= r.p95 && r.p95 <= r.p99 && r.p99 <= r.max);
        assert!(r.mean > 0.0);
    }

    #[test]
    fn raid5_write_latency_pays_rmw() {
        let r5 = run(Arch::Raid5, true);
        let rx = run(Arch::RaidX, true);
        assert!(
            r5.p50 > 1.3 * rx.p50,
            "RAID-5 median write {:.4}s not above RAID-x {:.4}s",
            r5.p50,
            rx.p50
        );
    }

    #[test]
    fn read_latencies_similar_across_archs() {
        let r5 = run(Arch::Raid5, false);
        let rx = run(Arch::RaidX, false);
        let ratio = r5.p50 / rx.p50;
        assert!((0.5..2.0).contains(&ratio), "read medians diverge: {ratio:.2}");
    }
}
