//! Shared I/O bus model.

use sim_core::{Demand, ServiceModel, SimDuration, SimTime};

use crate::spec::BusSpec;

/// A shared SCSI-style bus.
///
/// Every transfer to or from a disk on the bus holds it for
/// `per_command + bytes / rate`. Because the engine gives each resource a
/// FIFO queue, the k disks of one node contend here — producing exactly the
/// pipelined (rather than parallel) access the paper describes for
/// consecutive stripe groups on the same SCSI bus.
pub struct ScsiBus {
    spec: BusSpec,
    transfers: u64,
}

impl ScsiBus {
    /// A bus following `spec`.
    pub fn new(spec: BusSpec) -> Self {
        ScsiBus { spec, transfers: 0 }
    }

    /// Number of transfers arbitrated so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

impl ServiceModel for ScsiBus {
    fn service_time(&mut self, demand: &Demand, _now: SimTime) -> SimDuration {
        match *demand {
            Demand::Busy(d) => d,
            Demand::BusXfer { bytes } => {
                self.transfers += 1;
                self.spec.per_command + SimDuration::for_bytes(bytes, self.spec.rate)
            }
            ref other => panic!("bus received non-bus demand {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::plan::{par, use_res};
    use sim_core::Engine;

    #[test]
    fn charges_arbitration_plus_bytes() {
        let mut bus = ScsiBus::new(BusSpec::ultra_scsi());
        let t = bus.service_time(&Demand::BusXfer { bytes: 40_000_000 }, SimTime::ZERO);
        assert_eq!(t, SimDuration::from_micros(50) + SimDuration::from_secs(1));
        assert_eq!(bus.transfers(), 1);
    }

    #[test]
    fn serializes_concurrent_disk_transfers() {
        let mut e = Engine::new();
        let bus = e.add_resource("scsi0", Box::new(ScsiBus::new(BusSpec::fast_scsi())));
        // Three disks on one bus push 1 MB each: the bus is the bottleneck.
        e.spawn_job(
            "xfer",
            par((0..3).map(|_| use_res(bus, Demand::BusXfer { bytes: 1 << 20 })).collect()),
        );
        let rep = e.run().unwrap();
        let expect =
            (SimDuration::from_micros(50) + SimDuration::for_bytes(1 << 20, 20_000_000)) * 3;
        assert_eq!(rep.end.since(SimTime::ZERO), expect);
    }

    #[test]
    #[should_panic(expected = "non-bus demand")]
    fn rejects_disk_demand() {
        let mut bus = ScsiBus::new(BusSpec::ultra_scsi());
        bus.service_time(&Demand::DiskRead { offset: 0, bytes: 1 }, SimTime::ZERO);
    }
}
