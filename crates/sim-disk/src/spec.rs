//! Disk and bus parameter sets.

use sim_core::SimDuration;

/// Queue discipline applied to a disk's pending requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First-come first-served (arrival order).
    #[default]
    Fcfs,
    /// Shortest-seek-time-first: serve the request nearest the head.
    Sstf,
    /// Elevator (SCAN): sweep in one direction, reverse at the edge.
    Elevator,
}

/// Physical parameters of one disk.
///
/// Defaults mirror a late-1990s 7200 rpm SCSI drive of the class installed in
/// the Trojans cluster nodes; [`DiskSpec::modern`] is provided for
/// sensitivity studies.
#[derive(Debug, Clone)]
pub struct DiskSpec {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Shortest (track-to-track) seek.
    pub seek_min: SimDuration,
    /// Full-stroke seek.
    pub seek_max: SimDuration,
    /// Sustained media transfer rate, bytes/second.
    pub media_rate: u64,
    /// Fixed controller/firmware overhead charged per command.
    pub command_overhead: SimDuration,
    /// Requests starting exactly where the previous one ended skip
    /// positioning when true (track buffer / no intervening seek).
    pub sequential_detection: bool,
    /// Queue discipline for pending requests.
    pub scheduler: SchedPolicy,
}

impl DiskSpec {
    /// A 1999-class 7200 rpm SCSI disk (≈ the Trojans cluster hardware):
    /// 8.3 ms rotation, 1–15 ms seek, 15 MB/s media rate, 0.3 ms command
    /// overhead, 4 GB capacity.
    pub fn classic_scsi() -> Self {
        DiskSpec {
            capacity: 4 << 30,
            rpm: 7200,
            seek_min: SimDuration::from_micros(1_000),
            seek_max: SimDuration::from_micros(15_000),
            media_rate: 15_000_000,
            command_overhead: SimDuration::from_micros(300),
            sequential_detection: true,
            scheduler: SchedPolicy::Fcfs,
        }
    }

    /// A modern 7200 rpm SATA disk for sensitivity studies: 200 MB/s media
    /// rate, 0.1 ms overhead, 4 TB.
    pub fn modern() -> Self {
        DiskSpec {
            capacity: 4 << 40,
            rpm: 7200,
            seek_min: SimDuration::from_micros(500),
            seek_max: SimDuration::from_micros(12_000),
            media_rate: 200_000_000,
            command_overhead: SimDuration::from_micros(100),
            sequential_detection: true,
            scheduler: SchedPolicy::Elevator,
        }
    }

    /// Time for one full platter revolution.
    pub fn rotation_time(&self) -> SimDuration {
        SimDuration::from_nanos(60_000_000_000 / u64::from(self.rpm))
    }

    /// Mean rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> SimDuration {
        self.rotation_time() / 2
    }

    /// Average seek (the seek curve evaluated at one-third stroke, the
    /// conventional average-seek distance).
    pub fn avg_seek(&self) -> SimDuration {
        self.seek_at_fraction(1.0 / 3.0)
    }

    /// Seek time for a head movement spanning `fraction` of the full stroke,
    /// using the standard square-root acceleration curve.
    pub fn seek_at_fraction(&self, fraction: f64) -> SimDuration {
        if fraction <= 0.0 {
            return SimDuration::ZERO;
        }
        let f = fraction.min(1.0);
        let min = self.seek_min.as_nanos() as f64;
        let max = self.seek_max.as_nanos() as f64;
        SimDuration::from_nanos((min + (max - min) * f.sqrt()) as u64)
    }

    /// Expected service time for a *random* access of `bytes`:
    /// overhead + average seek + average rotational latency + transfer.
    /// Used by the analytic model (Table 2) for the per-block R/W terms.
    pub fn avg_random_access(&self, bytes: u64) -> SimDuration {
        self.command_overhead
            + self.avg_seek()
            + self.avg_rotational_latency()
            + SimDuration::for_bytes(bytes, self.media_rate)
    }

    /// Expected service time for a *sequential* access of `bytes`.
    pub fn sequential_access(&self, bytes: u64) -> SimDuration {
        self.command_overhead + SimDuration::for_bytes(bytes, self.media_rate)
    }

    /// Effective bandwidth (bytes/sec) for a stream of random accesses of
    /// `bytes` each — the paper's per-disk `B` once block size is fixed.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        bytes as f64 / self.avg_random_access(bytes).as_secs_f64()
    }
}

/// Parameters of a shared I/O bus (SCSI in the Trojans nodes).
#[derive(Debug, Clone)]
pub struct BusSpec {
    /// Bus bandwidth in bytes/second.
    pub rate: u64,
    /// Arbitration + command phase overhead charged per transfer.
    pub per_command: SimDuration,
}

impl BusSpec {
    /// UltraWide-SCSI-class bus: 40 MB/s, 50 µs arbitration per command.
    pub fn ultra_scsi() -> Self {
        BusSpec { rate: 40_000_000, per_command: SimDuration::from_micros(50) }
    }

    /// Fast-SCSI-class bus: 20 MB/s.
    pub fn fast_scsi() -> Self {
        BusSpec { rate: 20_000_000, per_command: SimDuration::from_micros(50) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_follows_rpm() {
        let spec = DiskSpec::classic_scsi();
        let rot = spec.rotation_time();
        assert!((rot.as_millis_f64() - 8.333).abs() < 0.01, "{rot}");
        // Integer division may lose a nanosecond.
        assert!(rot.as_nanos() - spec.avg_rotational_latency().as_nanos() * 2 <= 1);
    }

    #[test]
    fn seek_curve_monotone_and_bounded() {
        let spec = DiskSpec::classic_scsi();
        assert_eq!(spec.seek_at_fraction(0.0), SimDuration::ZERO);
        let mut prev = SimDuration::ZERO;
        for i in 1..=10 {
            let s = spec.seek_at_fraction(i as f64 / 10.0);
            assert!(s >= prev);
            prev = s;
        }
        assert_eq!(spec.seek_at_fraction(1.0), spec.seek_max);
        assert_eq!(spec.seek_at_fraction(2.0), spec.seek_max);
        assert!(spec.seek_at_fraction(1e-9) >= spec.seek_min);
    }

    #[test]
    fn random_access_dominated_by_positioning_for_small_blocks() {
        let spec = DiskSpec::classic_scsi();
        let small = spec.avg_random_access(32 << 10);
        let seq = spec.sequential_access(32 << 10);
        // Positioning must dominate a 32 KB transfer (that is the small-write
        // problem's raw material).
        assert!(small.as_nanos() > 4 * seq.as_nanos(), "small={small} seq={seq}");
    }

    #[test]
    fn effective_bandwidth_grows_with_block_size() {
        let spec = DiskSpec::classic_scsi();
        let b_small = spec.effective_bandwidth(32 << 10);
        let b_large = spec.effective_bandwidth(2 << 20);
        assert!(b_large > 4.0 * b_small);
        // Large-block bandwidth approaches but cannot exceed the media rate.
        assert!(b_large < spec.media_rate as f64);
    }
}
