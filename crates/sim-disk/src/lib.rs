#![warn(missing_docs)]
//! # sim-disk — mechanical disk and SCSI bus models
//!
//! Service models for the storage hardware of a late-1990s cluster node (the
//! USC Trojans cluster the RAID-x paper measured), pluggable into the
//! [`sim_core`] engine:
//!
//! * [`DiskModel`] — seek curve, rotational latency, media transfer rate,
//!   controller overhead, and **sequential-access detection**: a request that
//!   starts where the previous one ended skips positioning entirely. This is
//!   the property RAID-x's clustered image writes exploit (a mirroring
//!   group's images are flushed as one long sequential write), and the
//!   property RAID-5's read-modify-write cycles defeat.
//! * [`ScsiBus`] — the shared bus connecting the k disks of one node; it
//!   serializes transfers, which is what makes consecutive stripe groups on
//!   an n×k array *pipeline* rather than run fully parallel.
//!
//! All randomness (rotational phase) is drawn from a per-disk
//! [`SplitMix64`](sim_core::SplitMix64) stream, keeping runs reproducible.

pub mod bus;
pub mod model;
pub mod spec;

pub use bus::ScsiBus;
pub use model::DiskModel;
pub use spec::{BusSpec, DiskSpec};
