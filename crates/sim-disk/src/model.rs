//! The stateful per-disk service model.

use sim_core::{Demand, ServiceModel, SimDuration, SimTime, SplitMix64};

use crate::spec::{DiskSpec, SchedPolicy};

/// Mechanical disk service model.
///
/// Tracks head position between requests: a request whose offset equals the
/// previous request's end is served at media rate with only command overhead;
/// anything else pays a distance-dependent seek plus a rotational latency
/// drawn uniformly from one revolution.
pub struct DiskModel {
    spec: DiskSpec,
    rng: SplitMix64,
    /// Byte offset just past the last transferred byte (head position).
    head: u64,
    /// Cumulative positioning time (seek + rotation), for diagnostics.
    positioning: SimDuration,
    /// Number of sequential hits (requests that skipped positioning).
    sequential_hits: u64,
    ops: u64,
    /// Current elevator sweep direction (toward higher offsets).
    sweep_up: bool,
}

impl DiskModel {
    /// A disk following `spec`, with rotational phase noise from `seed`.
    pub fn new(spec: DiskSpec, seed: u64) -> Self {
        DiskModel {
            spec,
            rng: SplitMix64::new(seed),
            head: 0,
            positioning: SimDuration::ZERO,
            sequential_hits: 0,
            ops: 0,
            sweep_up: true,
        }
    }

    /// The parameters this model was built from.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// Fraction of requests served without repositioning.
    pub fn sequential_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.sequential_hits as f64 / self.ops as f64
        }
    }

    fn access(&mut self, offset: u64, bytes: u64) -> SimDuration {
        self.ops += 1;
        let transfer = SimDuration::for_bytes(bytes, self.spec.media_rate);
        let positioning = if self.spec.sequential_detection && offset == self.head {
            self.sequential_hits += 1;
            SimDuration::ZERO
        } else {
            let distance = offset.abs_diff(self.head);
            let fraction = if self.spec.capacity == 0 {
                1.0
            } else {
                distance as f64 / self.spec.capacity as f64
            };
            let seek = self.spec.seek_at_fraction(fraction);
            let rotation = SimDuration::from_nanos(
                self.rng.next_below(self.spec.rotation_time().as_nanos().max(1)),
            );
            seek + rotation
        };
        self.positioning += positioning;
        self.head = offset + bytes;
        self.spec.command_overhead + positioning + transfer
    }
}

impl DiskModel {
    fn offset_of(demand: &Demand) -> Option<u64> {
        match *demand {
            Demand::DiskRead { offset, .. } | Demand::DiskWrite { offset, .. } => Some(offset),
            _ => None,
        }
    }
}

impl ServiceModel for DiskModel {
    fn service_time(&mut self, demand: &Demand, _now: SimTime) -> SimDuration {
        match *demand {
            Demand::Busy(d) => d,
            Demand::DiskRead { offset, bytes } | Demand::DiskWrite { offset, bytes } => {
                self.access(offset, bytes)
            }
            ref other => panic!("disk received non-disk demand {other:?}"),
        }
    }

    fn select_next(&mut self, pending: &[&Demand]) -> usize {
        match self.spec.scheduler {
            SchedPolicy::Fcfs => 0,
            SchedPolicy::Sstf => pending
                .iter()
                .enumerate()
                .min_by_key(|(_, d)| Self::offset_of(d).map_or(0, |off| off.abs_diff(self.head)))
                .map_or(0, |(i, _)| i),
            SchedPolicy::Elevator => {
                // Nearest request in the sweep direction; if none, reverse.
                let pick = |up: bool| {
                    pending
                        .iter()
                        .enumerate()
                        .filter_map(|(i, d)| {
                            let off = Self::offset_of(d)?;
                            let ahead = if up { off >= self.head } else { off <= self.head };
                            ahead.then(|| (off.abs_diff(self.head), i))
                        })
                        .min()
                        .map(|(_, i)| i)
                };
                if let Some(i) = pick(self.sweep_up) {
                    i
                } else {
                    self.sweep_up = !self.sweep_up;
                    pick(self.sweep_up).unwrap_or(0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel::new(DiskSpec::classic_scsi(), 42)
    }

    fn read(m: &mut DiskModel, offset: u64, bytes: u64) -> SimDuration {
        m.service_time(&Demand::DiskRead { offset, bytes }, SimTime::ZERO)
    }

    #[test]
    fn sequential_run_is_media_rate() {
        let mut m = model();
        let first = read(&mut m, 0, 64 << 10);
        // Head starts at 0, so the very first read at offset 0 is sequential.
        assert_eq!(first, m.spec().sequential_access(64 << 10));
        let mut total = SimDuration::ZERO;
        for i in 1..=15u64 {
            total += read(&mut m, i * (64 << 10), 64 << 10);
        }
        assert_eq!(total, m.spec().sequential_access(64 << 10) * 15);
        assert!((m.sequential_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_access_pays_positioning() {
        let mut m = model();
        read(&mut m, 0, 4096);
        let jump = read(&mut m, 2 << 30, 4096);
        let seq = m.spec().sequential_access(4096);
        assert!(jump.as_nanos() > seq.as_nanos() + 1_000_000, "jump={jump}");
    }

    #[test]
    fn longer_seeks_cost_more_on_average() {
        // Average over many samples to wash out rotational noise.
        let sample = |dist: u64| -> f64 {
            let mut m = model();
            let mut total = 0.0;
            for i in 0..200u64 {
                // Alternate between 0 and dist so every access seeks `dist`.
                let off = if i % 2 == 0 { dist } else { 0 };
                total += read(&mut m, off, 4096).as_secs_f64();
            }
            total / 200.0
        };
        let near = sample(16 << 20); // 16 MB away
        let far = sample(3 << 30); // 3 GB away
        assert!(far > near, "far={far} near={near}");
    }

    #[test]
    fn rotational_latency_bounded_by_one_revolution() {
        let mut m = model();
        let spec = m.spec().clone();
        let worst = spec.command_overhead
            + spec.seek_max
            + spec.rotation_time()
            + SimDuration::for_bytes(4096, spec.media_rate);
        for i in 0..500u64 {
            let off = (i * 997) % (spec.capacity / 2) * 2; // scattered
            let t = read(&mut m, off, 4096);
            assert!(t <= worst, "t={t} worst={worst}");
            assert!(t >= spec.command_overhead);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let mut m = DiskModel::new(DiskSpec::classic_scsi(), seed);
            (0..100u64).map(|i| read(&mut m, (i * 7919) % (1 << 30), 8192).as_nanos()).sum::<u64>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    fn with_policy(p: SchedPolicy) -> DiskModel {
        let mut spec = DiskSpec::classic_scsi();
        spec.scheduler = p;
        DiskModel::new(spec, 42)
    }

    fn rd(offset: u64) -> Demand {
        Demand::DiskRead { offset, bytes: 4096 }
    }

    #[test]
    fn fcfs_always_picks_head_of_queue() {
        let mut m = with_policy(SchedPolicy::Fcfs);
        let q = [rd(5 << 30), rd(0), rd(1 << 20)];
        let refs: Vec<&Demand> = q.iter().collect();
        assert_eq!(m.select_next(&refs), 0);
    }

    #[test]
    fn sstf_picks_nearest_offset() {
        let mut m = with_policy(SchedPolicy::Sstf);
        read(&mut m, 1 << 30, 4096); // park the head around 1 GB
        let q = [rd(3 << 30), rd((1 << 30) + 8192), rd(0)];
        let refs: Vec<&Demand> = q.iter().collect();
        assert_eq!(m.select_next(&refs), 1);
    }

    #[test]
    fn elevator_sweeps_then_reverses() {
        let mut m = with_policy(SchedPolicy::Elevator);
        read(&mut m, 1 << 30, 4096); // head ~1 GB, sweeping up
                                     // Requests above and below the head: the sweep picks the nearest
                                     // *above* first.
        let q = [rd(0), rd(2 << 30), rd(3 << 30)];
        let refs: Vec<&Demand> = q.iter().collect();
        assert_eq!(m.select_next(&refs), 1);
        // With only lower offsets pending, the elevator reverses.
        let q = [rd(512 << 20), rd(0)];
        let refs: Vec<&Demand> = q.iter().collect();
        assert_eq!(m.select_next(&refs), 0);
        assert!(!m.sweep_up);
    }

    #[test]
    fn sstf_reduces_total_positioning_vs_fcfs() {
        use sim_core::plan::{par, use_res};
        use sim_core::Engine;
        // A batch of scattered requests arriving at once: SSTF should
        // finish sooner than FCFS on the same arrival order.
        let run = |policy: SchedPolicy| {
            let mut spec = DiskSpec::classic_scsi();
            spec.scheduler = policy;
            let mut e = Engine::new();
            let d = e.add_resource("disk", Box::new(DiskModel::new(spec, 7)));
            // Interleaved far/near offsets (worst case for FCFS).
            let offs = [
                0u64,
                3 << 30,
                4096,
                (3 << 30) + 4096,
                8192,
                (3 << 30) + 8192,
                12288,
                (3 << 30) + 12288,
            ];
            e.spawn_job("batch", par(offs.iter().map(|&o| use_res(d, rd(o))).collect()));
            e.run().unwrap().end.as_secs_f64()
        };
        let fcfs = run(SchedPolicy::Fcfs);
        let sstf = run(SchedPolicy::Sstf);
        let elevator = run(SchedPolicy::Elevator);
        assert!(sstf < 0.8 * fcfs, "sstf={sstf:.4} fcfs={fcfs:.4}");
        assert!(elevator < 0.8 * fcfs, "elevator={elevator:.4} fcfs={fcfs:.4}");
    }

    #[test]
    #[should_panic(expected = "non-disk demand")]
    fn rejects_net_demand() {
        let mut m = model();
        m.service_time(&Demand::NetXfer { bytes: 1 }, SimTime::ZERO);
    }
}
